//! The synchronous multicomputer: one state per node, stepped through
//! communication and computation cycles under 1-port validation.

use crate::error::SimError;
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::metrics::LinkUtil;
use crate::metrics::Metrics;
use crate::obs::{
    Backend, CacheStatus, CycleEvent, CycleKind, Event, LinkReport, PhaseEvent, PoolDispatchStats,
    Recorder, SharedSink,
};
use crate::parallel::{
    par_apply_forced, par_for_reduce, par_lane_apply_bounds, par_lane_reduce_bounds,
    par_slab_reduce, par_zip_apply, ExecMode,
};
use crate::schedule::{
    self, AcctPlan, CompiledSchedule, ScheduleBank, ScheduleCache, ScheduleKey, NO_SRC, SENDS_BIT,
};
use dc_topology::{NodeId, ShardMap, Topology};
use std::any::Any;
use std::fmt;
use std::time::Instant;

/// A reusable, type-erased `Vec<E>`: one allocation that survives across
/// cycles for as long as the element type `E` stays the same (the steady
/// state of every cycle loop). A cycle with a new element type swaps in a
/// fresh vector; the old one is dropped. The plan slab instantiates it at
/// `E = Option<(NodeId, M)>`; the delivery payload slab at
/// `E = Option<M>` — sources travel separately in the dense `u32`
/// `Scratch::inbox_src` array, so small-`M` payload slots stop paying the
/// `usize` source plus its padding.
struct TypedSlot(Option<Box<dyn Any + Send>>);

impl TypedSlot {
    const fn new() -> Self {
        TypedSlot(None)
    }

    /// The buffer for element type `E`, *cleared* but with its capacity
    /// intact. Allocates only on first use or when `E` changed since the
    /// previous cycle.
    fn cleared<E: Send + Sync + 'static>(&mut self) -> &mut Vec<E> {
        let fresh = match &self.0 {
            Some(b) => !b.is::<Vec<E>>(),
            None => true,
        };
        if fresh {
            self.0 = Some(Box::new(Vec::<E>::new()));
        }
        let v: &mut Vec<E> = self
            .0
            .as_mut()
            .expect("slot populated above")
            .downcast_mut()
            .expect("slot typed above");
        v.clear();
        v
    }

    /// The payload slab for message type `M` at length `n`, **contents
    /// preserved**. The inbox discipline keeps the slab all-`None`
    /// between cycles (delivery `take`s every slot; error paths clear),
    /// so when the type and length already match this skips the O(n)
    /// `None` prefill a cleared slab would need — the difference between
    /// a replayed cycle doing two passes over the slab and three.
    fn warm<M: Send + Sync + 'static>(&mut self, n: usize) -> &mut Vec<Option<M>> {
        let reusable = match &self.0 {
            Some(b) => b
                .downcast_ref::<Vec<Option<M>>>()
                .is_some_and(|v| v.len() == n),
            None => false,
        };
        if !reusable {
            let v = self.cleared::<Option<M>>();
            v.resize_with(n, || None);
            return v;
        }
        let v: &mut Vec<Option<M>> = self
            .0
            .as_mut()
            .expect("slot populated above")
            .downcast_mut()
            .expect("slot typed above");
        debug_assert!(
            v.iter().all(Option::is_none),
            "warm inbox slab must be all-None between cycles"
        );
        v
    }
}

/// A reusable, type-erased **lane buffer** `Vec<V>` of length
/// `n × lanes`: node `u` owns the window `[u·lanes, (u+1)·lanes)`. The
/// lane-batched cycle stages K payload values per delivered message into
/// the receiver's window (SoA layout — lane `k` of every node sits at a
/// fixed offset inside its window, so the K-wide compute folds
/// vectorize). Reallocated only when the value type or total length
/// changes; stale contents between cycles are fine because
/// `Scratch::lane_src` gates which windows delivery reads and a staged
/// window is always fully overwritten by `fill` first.
struct LaneSlot(Option<Box<dyn Any + Send>>);

impl LaneSlot {
    const fn new() -> Self {
        LaneSlot(None)
    }

    /// The lane buffer for value type `V` at total length `len`,
    /// contents unspecified (stale from earlier cycles). Allocates only
    /// on first use, on a type change, or on a length change — never in
    /// the steady state. `seed` initialises any newly created slots.
    fn strided<V: Clone + Send + Sync + 'static>(&mut self, len: usize, seed: &V) -> &mut Vec<V> {
        let fresh = match &self.0 {
            Some(b) => !b.is::<Vec<V>>(),
            None => true,
        };
        if fresh {
            self.0 = Some(Box::new(Vec::<V>::new()));
        }
        let v: &mut Vec<V> = self
            .0
            .as_mut()
            .expect("slot populated above")
            .downcast_mut()
            .expect("slot typed above");
        if v.len() != len {
            v.clear();
            v.resize(len, seed.clone());
        }
        v
    }
}

/// Per-cycle scratch buffers owned by the machine so that a steady-state
/// cycle performs **zero heap allocations**: the plan slots, the
/// receive-conflict tables (sequential and atomic), the deliver inbox,
/// and the pairwise partner table are all reused across cycles (pinned by
/// the counting-allocator test in `tests/zero_alloc.rs`). Purely
/// transient — contents never survive past the cycle that filled them, so
/// cloning a machine starts the clone with empty scratch and
/// equality/trace semantics are unaffected.
struct Scratch {
    /// `recv_from[dst]` = sending node during sequential validation
    /// ([`NO_SRC`] = no sender yet). `u32` — node ids fit by the
    /// [`Machine::new`] construction bound, and halving the table keeps
    /// D_10+ validation inside cache.
    recv_from: Vec<u32>,
    /// The sharded validation passes' claim table: `claims[dst]` =
    /// lowest locally-valid sender targeting `dst` this cycle
    /// ([`NO_SRC`] = none). Plain `u32`, **not** atomic: each dispatch
    /// slot owns a contiguous shard range and min-merges only inside it;
    /// cross-shard claims travel through [`ExchangeRow`] bins instead of
    /// `fetch_min` contention.
    claims: Vec<u32>,
    /// Shard-aligned dispatch bounds for the current cycle (slot `k`
    /// owns nodes `shard_bounds[k]..shard_bounds[k+1]`), rebuilt each
    /// threaded cycle from the shard map and worker count (≤ 33 entries
    /// — the rebuild is noise, the reuse keeps it allocation-free).
    shard_bounds: Vec<usize>,
    /// Per-slot staging rows for cross-shard claims (`exchange[k]` is
    /// written only by dispatch slot `k` during pass A and drained
    /// read-only during pass B). Bins keep their capacity across cycles.
    exchange: Vec<ExchangeRow>,
    /// Pairwise partner choices, reused by `try_pairwise_sized`
    /// ([`NO_PARTNER`] = the node sits out; see [`pack_partner`]).
    partners: Vec<u32>,
    /// Plan-phase output slots (`Option<(NodeId, M)>` per node), keyed by
    /// message type.
    plans: TypedSlot,
    /// Staged message sources for the deliver phase: `inbox_src[dst]` is
    /// the packed sender id, [`NO_SRC`] when nothing was staged. The
    /// presence gate of the split inbox layout — the payload slab is only
    /// read where a source is set (full/replay paths additionally keep
    /// the payload `Option` as the move-out gate).
    inbox_src: Vec<u32>,
    /// Deliver-phase message payloads (`Option<M>` per node, threaded and
    /// replay paths), keyed by message type. Split from the sources so a
    /// small `M` costs `4 + sizeof(Option<M>)` bytes per node instead of
    /// a 16–24-byte `Option<(usize, M)>` slot.
    payload: TypedSlot,
    /// Staged lane senders: `lane_src[dst]` names the node whose lane
    /// window was filled for `dst` this cycle ([`NO_SRC`] = silent).
    lane_src: Vec<u32>,
    /// Lane payload windows (`lanes` values per node), keyed by value
    /// type.
    lanebuf: LaneSlot,
}

impl Scratch {
    const fn new() -> Self {
        Scratch {
            recv_from: Vec::new(),
            claims: Vec::new(),
            shard_bounds: Vec::new(),
            exchange: Vec::new(),
            partners: Vec::new(),
            plans: TypedSlot::new(),
            inbox_src: Vec::new(),
            payload: TypedSlot::new(),
            lane_src: Vec::new(),
            lanebuf: LaneSlot::new(),
        }
    }
}

/// One dispatch slot's SPSC staging area for **cross-shard claims**
/// during the sharded validation pass. In pass A slot `k` appends the
/// `(src, dst)` pairs whose destination lives outside its own shard
/// range to `bins[slot_of(dst)]` (single producer); in pass B the
/// destination slot drains every row's bin for itself (single consumer,
/// min-merging into its own claim range). No atomics anywhere — the
/// fork-join barrier between the passes is the only synchronisation.
/// Rows and bins keep their capacity across cycles, so the steady state
/// stays allocation-free.
#[derive(Default)]
struct ExchangeRow {
    bins: Vec<Vec<(u32, u32)>>,
}

/// `Scratch::partners` sentinel for "no partner this cycle".
const NO_PARTNER: u32 = u32::MAX;

/// Packs a pairwise partner choice into the dense `u32` table.
/// Out-of-range ids (possible only from a buggy partner function on a
/// sub-4G topology, since construction bounds `n`) are clamped to a value
/// that is still `≥ num_nodes`, so validation keeps reporting
/// [`SimError::OutOfRange`] for them.
#[inline]
fn pack_partner(p: Option<NodeId>) -> u32 {
    match p {
        None => NO_PARTNER,
        Some(v) => v.min(NO_PARTNER as usize - 1) as u32,
    }
}

impl fmt::Debug for Scratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Scratch { .. }")
    }
}

impl Clone for Scratch {
    /// Scratch is transient per-cycle storage; a cloned machine starts
    /// with fresh (empty) buffers.
    fn clone(&self) -> Self {
        Scratch::new()
    }
}

/// Chunk-local accumulator of the deterministic validation / replay
/// reductions: message counters plus the lowest-index violation seen.
/// `Copy` so the per-slot results live in a stack array — the reductions
/// stay allocation-free.
#[derive(Clone, Copy)]
struct CycleAcc {
    delivered: usize,
    words: u64,
    /// Lowest-index violation in this chunk, as `(node index, error)`.
    violation: Option<(usize, SimError)>,
}

impl CycleAcc {
    const EMPTY: CycleAcc = CycleAcc {
        delivered: 0,
        words: 0,
        violation: None,
    };

    /// Records a violation at `index` unless one at a lower (or equal)
    /// index is already held.
    fn violate(&mut self, index: usize, err: SimError) {
        match self.violation {
            Some((held, _)) if held <= index => {}
            _ => self.violation = Some((index, err)),
        }
    }

    /// Fold for the slot-order reduction: counters sum; the
    /// lowest-index violation wins, and on an index tie the **left**
    /// operand's error wins — left is always the earlier slot, or the
    /// earlier validation pass (local checks before conflict checks,
    /// mirroring the sequential per-node check order).
    fn merge(self, other: CycleAcc) -> CycleAcc {
        let violation = match (self.violation, other.violation) {
            (Some((a, _)), Some((b, _))) => {
                if a <= b {
                    self.violation
                } else {
                    other.violation
                }
            }
            (Some(_), None) => self.violation,
            (None, v) => v,
        };
        CycleAcc {
            delivered: self.delivered + other.delivered,
            words: self.words + other.words,
            violation,
        }
    }
}

/// Observability context threaded from a cycle's public entry point down
/// to the emission site: which [`ScheduleKey`] named the cycle (if any),
/// how the schedule cache treated it, and the wall-clock start captured
/// at the entry point (`None` whenever no recorder is installed, so the
/// disabled path never reads the clock).
#[derive(Clone, Copy)]
struct ObsCtx {
    key: Option<ScheduleKey>,
    cache: CacheStatus,
    start: Option<Instant>,
}

impl ObsCtx {
    fn unkeyed(start: Option<Instant>) -> Self {
        ObsCtx {
            key: None,
            cache: CacheStatus::Unkeyed,
            start,
        }
    }
}

/// One space-time trace entry ([`Machine::phased_trace`]): the index of
/// the metrics phase open when the cycle ran (`None` before the first
/// [`Machine::begin_phase`]) and the `(src, dst)` pairs the cycle
/// delivered.
pub type TraceEntry = (Option<u32>, Vec<(NodeId, NodeId)>);

/// A synchronous message-passing machine over a [`Topology`].
///
/// Algorithms drive the machine through three primitives:
///
/// * [`Machine::exchange`] — one communication cycle: every node may send
///   one message to one neighbour; the machine validates adjacency and the
///   1-port constraint (≤1 send, ≤1 receive per node per cycle) before
///   delivering.
/// * [`Machine::pairwise`] — the common special case of a symmetric
///   exchange along a perfect (partial) matching, e.g. one dimension of an
///   ascend/descend algorithm.
/// * [`Machine::compute`] — one computation phase of local work per node,
///   charged as one or more computation cycles.
///
/// The node-local closures receive only the node's own id and state — the
/// same information a real SPMD process would have — which keeps simulated
/// algorithms honest about what must travel in messages.
///
/// # Keyed cycles: compiled schedules
///
/// The paper's algorithms run *fixed, data-oblivious* communication
/// patterns, repeated across hundreds of cycles. The keyed entry points
/// ([`Machine::pairwise_keyed`], [`Machine::exchange_keyed`] and their
/// sized/`try_` forms) let an algorithm name its pattern with a
/// [`ScheduleKey`]: the first cycle under a key runs full validation and
/// compiles the matching; later cycles **replay** it, skipping adjacency
/// queries, the receive-conflict table, and the pairwise symmetry
/// pre-pass. Replay still re-evaluates every node's plan against the
/// compiled pattern and rejects any deviation with
/// [`SimError::ScheduleDeviation`], so a key can never launder an invalid
/// schedule — see the [`crate::schedule`] module docs.
///
/// # Execution backend
///
/// Each cycle's per-node work runs under an [`ExecMode`]. The default,
/// [`ExecMode::parallel`], spreads the work of machines with at least
/// [`crate::parallel::PAR_THRESHOLD`] nodes over the host cores; smaller
/// machines (and any machine under [`ExecMode::Sequential`]) use plain
/// loops. An unkeyed communication cycle splits into three phases:
///
/// 1. **plan** — `plan(u, &state)` for every node, read-only, parallel;
/// 2. **validate** — the 1-port matching check. The threaded backend
///    runs it as two parallel reduction passes (local checks plus an
///    atomic lowest-sender claim per receiver, then conflict detection)
///    whose lowest-node-index violation reduction reproduces the
///    sequential first-violation-in-node-order report **bit-identically**
///    at any worker count;
/// 3. **deliver** — receiver-driven: since a validated cycle delivers at
///    most one message per node, messages are scattered into a per-node
///    inbox and each worker mutates only its own node's state.
///
/// A keyed *replay* cycle collapses plan + validate into one pass (each
/// receiver evaluates its compiled sender's plan straight into its own
/// inbox slot) followed by deliver — no sequential O(n) phase on either
/// backend.
///
/// Simulated metrics never depend on the backend; the parallel backend is
/// observationally identical and only changes wall-clock time.
///
/// # Fault injection
///
/// [`Machine::set_fault_plan`] arms a scripted [`FaultPlan`] (and
/// [`Machine::inject_fault`] applies one fault immediately): node
/// crashes and link cuts make any cycle whose plan touches the damage
/// fail with [`SimError::NodeFailed`] / [`SimError::LinkDown`] — and
/// bump the machine's *fault epoch*, invalidating every compiled
/// schedule so a pre-fault pattern is recompiled under full validation
/// instead of replayed (see the [`crate::fault`] module docs). Scripted
/// message drops silently lose one cycle's deliveries to a node
/// (counted in [`Metrics::dropped_messages`]). Crashed nodes' states
/// freeze: computation phases skip them. Fault handling is
/// deterministic on every backend; a fault-free machine pays only a
/// couple of flag checks per cycle.
///
/// ```
/// use dc_simulator::Machine;
/// use dc_topology::Hypercube;
///
/// // All-reduce (sum) on Q_3 by dimension sweeps.
/// let q = Hypercube::new(3);
/// let mut m = Machine::new(&q, (0..8u64).collect::<Vec<_>>());
/// for i in 0..3 {
///     m.pairwise(
///         |u, _| Some(u ^ (1 << i)),
///         |_, &s| s,
///         |s, _, other| *s += other,
///     );
///     m.compute(1, |_, _| {});
/// }
/// assert!(m.states().iter().all(|&s| s == 28));
/// assert_eq!(m.metrics().comm_steps, 3);
/// ```
#[derive(Debug, Clone)]
pub struct Machine<'t, T: Topology + ?Sized, S> {
    topo: &'t T,
    states: Vec<S>,
    metrics: Metrics,
    trace: Option<Vec<TraceEntry>>,
    exec: ExecMode,
    scratch: Scratch,
    schedules: ScheduleCache,
    replay: bool,
    faults: FaultState,
    recorder: Option<Recorder>,
    /// Cached [`Topology::max_ports`] — the stride of the recorder's flat
    /// port-indexed link table. Computed at most once per machine, and
    /// only on the first recorded delivery (the trait's default sweeps
    /// the whole graph, so unrecorded runs never pay it).
    link_ports: Option<u32>,
    /// Requested shard count (`0` = derive from the worker count). See
    /// [`Machine::set_shards`].
    shard_req: usize,
    /// The resolved shard map — sticky once computed (like `link_ports`)
    /// so the partition, and with it every first-touch allocation and
    /// worker affinity, stays fixed for the life of the machine.
    shard_map: Option<ShardMap>,
}

/// The flat link-table slot of the undirected link `{src, dst}`:
/// `min · ports + port_of(min, max)` — dense, collision-free (ports are
/// injective per endpoint), and computed with two integer ops plus one
/// closed-form port lookup instead of the hash-map probe the recorder's
/// old keyed rollup paid per message (§E25's ~28 ns/msg tax).
#[inline]
fn link_slot<T: Topology + ?Sized>(topo: &T, ports: u32, src: NodeId, dst: NodeId) -> usize {
    let (a, b) = if src < dst { (src, dst) } else { (dst, src) };
    let port = topo
        .port_of(a, b)
        .expect("validated delivery runs along a live edge");
    a * ports as usize + port as usize
}

/// Flushes one compiled schedule's deferred replay accounting (see
/// `schedule::AcctPlan`) into the recorder's link table: per-dst counts
/// map through the compiled pattern to link slots — one `link_slot`
/// resolution per *touched receiver per flush*, not per message per
/// cycle. Free function so the machine can destructure its fields
/// (recorder, schedule cache, topology) without aliasing.
fn flush_acct_into<T: Topology + ?Sized>(
    topo: &T,
    ports: u32,
    rec: &mut Recorder,
    enc: &[u32],
    acct: &mut AcctPlan,
) {
    if !acct.dirty {
        return;
    }
    for (dst, &m) in acct.msgs.iter().enumerate() {
        if m > 0 {
            let src = (enc[dst] & NO_SRC) as usize;
            let slot = link_slot(topo, ports, src, dst);
            rec.record_link_bulk(slot, m as u64, acct.words[dst], acct.is_cross(dst));
        }
    }
    acct.reset_counts();
}

impl<'t, T: Topology + ?Sized + Sync, S> Machine<'t, T, S> {
    /// Creates a machine with one initial state per node, under the
    /// default [`ExecMode`] (parallel above the size threshold).
    ///
    /// Panics unless `states.len() == topo.num_nodes()`.
    pub fn new(topo: &'t T, states: Vec<S>) -> Self {
        assert_eq!(
            states.len(),
            topo.num_nodes(),
            "need exactly one state per node of {}",
            topo.name()
        );
        // Node ids are packed into `u32` machine-wide (compiled
        // schedules, the split inbox's source array, claim tables), with
        // the top bit reserved for schedule flags: 2^31 − 1 nodes is the
        // hard ceiling, far above D_12's 8.4M.
        assert!(
            states.len() < NO_SRC as usize,
            "{} has {} nodes; this machine packs node ids into u32 and \
             supports at most {} nodes",
            topo.name(),
            states.len(),
            NO_SRC - 1
        );
        Machine {
            topo,
            states,
            metrics: Metrics::new(),
            trace: None,
            exec: ExecMode::default(),
            scratch: Scratch::new(),
            schedules: ScheduleCache::new(),
            replay: schedule::replay_default(),
            faults: FaultState::new(),
            recorder: crate::obs::default_recorder(),
            link_ports: None,
            shard_req: 0,
            shard_map: None,
        }
    }

    /// The flat link-table stride, computed lazily (only recorded cycles
    /// call this). `max(1)` so degenerate single-node topologies still
    /// index safely. Also the recorder's cue to segment its link table
    /// along the shard map (one segment per shard's min-endpoint slot
    /// range), so segment allocation is first-touch per shard.
    fn link_ports(&mut self) -> u32 {
        let p = match self.link_ports {
            Some(p) => p,
            None => {
                let p = self.topo.max_ports().max(1);
                self.link_ports = Some(p);
                p
            }
        };
        let chunk = self.shard_map().chunk();
        if let Some(rec) = self.recorder.as_mut() {
            rec.configure_links(chunk.saturating_mul(p as usize));
        }
        p
    }

    /// Sets the shard count for the sharded cycle engine: `0` derives it
    /// from the worker count (the default), otherwise `count` must be 1
    /// or a power of 4 — the paper's Section-4 recursion splits `D_n`
    /// into four `D_(n-1)` copies per level, and the shard map keys off
    /// the same top address bits (see `dc_topology::ShardMap`).
    ///
    /// Sharding is an execution-layout knob like [`Machine::set_exec`]:
    /// states, metrics, traces, and error reports are bit-identical at
    /// every `S` (pinned by `tests/shard_determinism.rs`); only memory
    /// locality and wall-clock change. Takes effect from the next cycle;
    /// the map resolves once and then stays fixed for the machine's life.
    pub fn set_shards(&mut self, count: usize) {
        assert!(
            count == 0 || (count.is_power_of_two() && count.trailing_zeros().is_multiple_of(2)),
            "shard count must be 0 (auto), 1, or a power of 4, got {count}"
        );
        self.shard_req = count;
        self.shard_map = None;
    }

    /// The shard count: the sticky resolved value once a cycle (or
    /// `Machine::shard_map`) has pinned the map, otherwise the value
    /// auto mode *would* resolve to right now. A plain getter — shared
    /// references (fleet introspection, report builders) can ask without
    /// mutating the machine; resolution itself still happens lazily on
    /// the first cycle.
    pub fn shards(&self) -> usize {
        match self.shard_map {
            Some(map) => map.count(),
            None => self.resolve_shard_count(),
        }
    }

    /// The shard count the next [`Machine::shard_map`] resolution will
    /// pick: the requested count, or — in auto mode — the smallest power
    /// of 4 covering the worker count (capped at 64), so every pool
    /// worker can own at least one whole shard. Pure: reads, never
    /// caches.
    fn resolve_shard_count(&self) -> usize {
        match self.shard_req {
            0 => {
                let workers = crate::parallel::available_threads();
                let mut s = 1usize;
                while s < workers && s < 64 {
                    s *= 4;
                }
                s
            }
            c => c,
        }
    }

    /// The machine's shard map, resolved on first use and sticky after
    /// (see [`Machine::resolve_shard_count`] for the auto-mode rule).
    fn shard_map(&mut self) -> ShardMap {
        match self.shard_map {
            Some(map) => map,
            None => {
                let map = ShardMap::new(self.states.len(), self.resolve_shard_count());
                self.shard_map = Some(map);
                map
            }
        }
    }

    /// Rebuilds `scratch.shard_bounds` for the current worker count and
    /// returns the number of dispatch slots it describes.
    fn shard_bounds(&mut self) -> usize {
        let map = self.shard_map();
        let workers = crate::parallel::available_threads();
        map.slot_bounds_into(workers, &mut self.scratch.shard_bounds);
        self.scratch.shard_bounds.len() - 1
    }

    /// [`Machine::new`] with an explicit execution backend.
    pub fn with_exec(topo: &'t T, states: Vec<S>, exec: ExecMode) -> Self {
        let mut m = Machine::new(topo, states);
        m.exec = exec;
        m
    }

    /// The current execution backend.
    pub fn exec(&self) -> ExecMode {
        self.exec
    }

    /// Switches the execution backend. Takes effect from the next cycle;
    /// results and metrics are identical under every mode (the backends
    /// are observationally equivalent — see the determinism tests).
    pub fn set_exec(&mut self, exec: ExecMode) {
        self.exec = exec;
    }

    /// Whether keyed cycles use the schedule cache (see
    /// [`Machine::set_schedule_replay`]).
    pub fn schedule_replay(&self) -> bool {
        self.replay
    }

    /// Enables or disables schedule capture-and-replay for the keyed
    /// entry points. Off, every keyed cycle takes the full
    /// validate-every-cycle path (the A/B baseline); results, traces, and
    /// step metrics are identical either way — only wall-clock and the
    /// [`Metrics::schedule_hits`] / [`Metrics::schedule_misses`]
    /// observability counters differ. The initial value comes from
    /// [`crate::with_schedule_replay`] (default: enabled).
    pub fn set_schedule_replay(&mut self, enabled: bool) {
        self.replay = enabled;
    }

    /// Number of compiled schedules currently cached.
    pub fn compiled_schedules(&self) -> usize {
        self.schedules.len()
    }

    /// Drops every compiled schedule. The next cycle under each key
    /// recompiles (and counts a [`Metrics::schedule_misses`]). Never
    /// needed for correctness — replay re-checks the pattern every cycle
    /// — but useful to re-measure cold-cache behaviour.
    pub fn clear_schedules(&mut self) {
        self.flush_deferred_links();
        self.schedules.clear();
    }

    /// Installs the compiled schedules of a [`ScheduleBank`] into this
    /// machine, so its keyed cycles replay patterns a *previous* machine
    /// over the same topology validated — the serving fleet's way of
    /// keeping schedule warmth across requests whose state types differ.
    /// The bank is drained; [`Machine::donate_schedules`] refills it when
    /// this machine's run ends.
    ///
    /// Panics if the bank was warmed on a different node count, if this
    /// machine has already compiled schedules of its own (merge order
    /// would be ambiguous — adopt before the first keyed cycle), or if
    /// its fault epoch has moved (banks carry fault-free compilations
    /// only; epoch numbering is per-machine). Adopting a bank from a
    /// different same-sized topology cannot corrupt results — replay
    /// re-checks the pattern every cycle and deviations fail the cycle —
    /// but the per-link accounting classification assumes the compiling
    /// topology, so keep one bank per topology.
    pub fn adopt_schedules(&mut self, bank: &mut ScheduleBank) {
        if bank.entries.is_empty() {
            return;
        }
        assert_eq!(
            bank.nodes,
            self.states.len(),
            "schedule bank was warmed on {} nodes but this machine has {}",
            bank.nodes,
            self.states.len()
        );
        assert_eq!(
            self.faults.epoch(),
            0,
            "schedule banks only serve machines whose fault epoch is 0"
        );
        assert_eq!(
            self.schedules.len(),
            0,
            "adopt a schedule bank before the machine compiles its own schedules"
        );
        self.schedules
            .install_entries(std::mem::take(&mut bank.entries));
    }

    /// Moves this machine's compiled schedules into `bank` (replacing the
    /// bank's contents — the machine's set is a superset of anything it
    /// adopted, since entries are only ever added within an epoch), after
    /// flushing their deferred accounting into the live recorder so no
    /// pending counts leave the machine. The machine's cache is left
    /// empty; the machine itself remains usable (later keyed cycles
    /// simply recompile).
    ///
    /// Panics if the machine's fault epoch has moved — post-fault
    /// schedules are meaningless to other machines (see
    /// [`ScheduleBank`]).
    pub fn donate_schedules(&mut self, bank: &mut ScheduleBank) {
        assert_eq!(
            self.faults.epoch(),
            0,
            "schedule banks only accept fault-free (epoch-0) compilations"
        );
        self.flush_deferred_links();
        let entries = self.schedules.take_entries();
        if entries.is_empty() {
            return;
        }
        bank.entries = entries;
        bank.nodes = self.states.len();
    }

    /// Drains every schedule's deferred replay accounting into the live
    /// recorder's link table (no-op without one). Called wherever a
    /// schedule — or the recorder — is about to leave the machine.
    fn flush_deferred_links(&mut self) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        // Deferred counts only accumulate on recorded replays, which
        // resolve `link_ports` first — so `None` here means no counts.
        let Some(ports) = self.link_ports else {
            return;
        };
        let topo = self.topo;
        for entry in self.schedules.entries_mut() {
            let CompiledSchedule { enc, acct, .. } = entry;
            if let Some(acct) = acct.as_deref_mut() {
                flush_acct_into(topo, ports, rec, enc, acct);
            }
        }
    }

    /// Flushes one schedule's deferred accounting right before the entry
    /// is dropped — the stale-epoch eviction path of the epoch sweep.
    fn flush_retired(&mut self, mut evicted: CompiledSchedule) {
        let CompiledSchedule { enc, acct, .. } = &mut evicted;
        let Some(acct) = acct.as_deref_mut() else {
            return;
        };
        if !acct.dirty || self.recorder.is_none() {
            return;
        }
        let ports = self.link_ports();
        let topo = self.topo;
        if let Some(rec) = self.recorder.as_mut() {
            flush_acct_into(topo, ports, rec, enc, acct);
        }
    }

    /// Arms a scripted [`FaultPlan`]: its events apply at the
    /// communication-cycle boundaries they name (merging with any
    /// still-pending events from earlier plans). See the
    /// [`crate::fault`] module docs for the semantics of each
    /// [`FaultKind`]. Panics if an event names an out-of-range node.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults.arm(plan, self.states.len());
    }

    /// Applies one fault immediately (between cycles), without waiting
    /// for a scripted boundary. A crash or link cut bumps the fault
    /// epoch, invalidating every compiled schedule; a message drop arms
    /// for the next communication cycle only.
    pub fn inject_fault(&mut self, kind: FaultKind) {
        if self.faults.apply(kind, self.states.len()) {
            self.sync_schedule_epoch();
        }
    }

    /// Moves the schedule cache to the fault state's epoch, physically
    /// evicting every schedule compiled under the old one and flushing
    /// each dead entry's pending deferred accounting into the recorder
    /// first. Keeping the sweep here (not in `ScheduleCache`) is what
    /// lets the evicted entries meet the recorder before they drop.
    fn sync_schedule_epoch(&mut self) {
        for dead in self.schedules.set_epoch(self.faults.epoch()) {
            self.flush_retired(dead);
        }
    }

    /// The machine's current fault epoch: 0 until the first crash or
    /// link cut, +1 for each one since. Compiled schedules from earlier
    /// epochs are never replayed (see [`crate::fault`]).
    pub fn fault_epoch(&self) -> u64 {
        self.faults.epoch()
    }

    /// Whether node `u` has crashed (by script or injection).
    pub fn is_failed(&self, u: NodeId) -> bool {
        self.faults.is_failed(u)
    }

    /// Ids of the nodes that have crashed so far, ascending.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.faults.failed_nodes()
    }

    /// The links taken down so far, endpoint-normalised (`a < b`).
    pub fn links_down(&self) -> &[(NodeId, NodeId)] {
        self.faults.links_down()
    }

    /// Applies scripted fault events due at this communication-cycle
    /// boundary (the machine's completed `comm_steps` is the index of
    /// the cycle about to run) and syncs the schedule cache's epoch.
    /// Idempotent per boundary — events are consumed — and free when
    /// nothing is pending.
    fn advance_faults(&mut self) {
        if self
            .faults
            .advance(self.metrics.comm_steps, self.states.len())
        {
            self.sync_schedule_epoch();
        }
    }

    /// Whether this machine's cycles currently run on the threaded
    /// backend (mode is parallel *and* the machine is large enough).
    fn threaded(&self) -> bool {
        self.exec.is_parallel_for(self.states.len())
    }

    /// Starts recording a space-time trace: each subsequent communication
    /// cycle appends the list of `(src, dst)` messages it delivered,
    /// tagged with the metrics phase active when the cycle ran.
    /// Costly for big machines; meant for the worked-example diagrams.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded space-time trace: one entry per communication cycle
    /// (empty unless [`Machine::enable_trace`] was called before the
    /// cycles ran). Each entry is `(phase, messages)` where `phase`
    /// indexes into [`Metrics::phases`] — the phase open when the cycle
    /// ran, or `None` for cycles before the first
    /// [`Machine::begin_phase`].
    pub fn phased_trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Installs a recorder: every subsequent phase boundary and cycle
    /// emits one structured [`Event`] into `sink`, and per-link
    /// utilization counters start accumulating (see the [`crate::obs`]
    /// module docs). Replaces any previously installed recorder (whose
    /// pending deferred accounting is flushed into it first, so the old
    /// recorder leaves complete).
    pub fn record_into(&mut self, sink: SharedSink) {
        self.flush_deferred_links();
        self.recorder = Some(Recorder::new(sink));
    }

    /// Whether a recorder is currently installed (via
    /// [`Machine::record_into`] or an ambient [`crate::with_recording`]
    /// scope at construction time).
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Uninstalls the recorder and returns it, so callers can still ask
    /// the detached recorder for its [`Recorder::link_report`]. Any
    /// deferred replay accounting is flushed into it first, so the
    /// detached report is complete. Returns `None` if no recorder was
    /// installed.
    pub fn stop_recording(&mut self) -> Option<Recorder> {
        self.flush_deferred_links();
        self.recorder.take()
    }

    /// The per-link utilization report accumulated so far, or `None` if
    /// no recorder is installed (link accounting only runs while
    /// recording — see [`crate::obs::LinkReport`]). Not-yet-flushed
    /// deferred replay accounting is overlaid on a temporary copy, so
    /// the report is exact at any observation point without mutating
    /// the machine.
    pub fn link_report(&self) -> Option<LinkReport> {
        let rec = self.recorder.as_ref()?;
        let Some(ports) = self.link_ports else {
            return Some(rec.link_report());
        };
        let topo = self.topo;
        Some(rec.link_report_with(|add| {
            for entry in self.schedules.entries() {
                if let Some(acct) = entry.acct.as_deref() {
                    if !acct.dirty {
                        continue;
                    }
                    for (dst, &m) in acct.msgs.iter().enumerate() {
                        if m > 0 {
                            let src = (entry.enc[dst] & NO_SRC) as usize;
                            let slot = link_slot(topo, ports, src, dst);
                            add(slot, m as u64, acct.words[dst], acct.is_cross(dst));
                        }
                    }
                }
            }
        }))
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t T {
        self.topo
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.states.len()
    }

    /// Immutable view of all node states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable view of all node states (for out-of-band setup only; does
    /// not count as simulated work).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Consumes the machine, returning final states and metrics.
    pub fn into_parts(self) -> (Vec<S>, Metrics) {
        (self.states, self.metrics)
    }

    /// Accumulated step counts.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Opens a labelled metrics phase (see [`Metrics::begin_phase`]).
    /// With a recorder installed, also emits a [`Event::Phase`] marker
    /// carrying the new phase's index and label.
    pub fn begin_phase(&mut self, label: impl Into<String>) {
        let label = label.into();
        if let Some(rec) = self.recorder.as_mut() {
            let event = Event::Phase(PhaseEvent {
                seq: rec.next_seq(),
                index: self.metrics.phases.len() as u32,
                label: label.clone(),
                at_ns: rec.now_ns(),
            });
            rec.send(&event);
        }
        self.metrics.begin_phase(label);
    }

    /// The index (into [`Metrics::phases`]) of the currently open phase,
    /// or `None` before the first [`Machine::begin_phase`].
    fn current_phase(&self) -> Option<u32> {
        self.metrics.phases.len().checked_sub(1).map(|i| i as u32)
    }

    /// Entry-point half of cycle observability: with no recorder this is
    /// a single `Option` check (no clock read, no allocation — the
    /// zero-cost-when-off contract). With one, it drains any pool
    /// dispatch stats left over from out-of-band work so the cycle's
    /// event sees only its own dispatches, and captures the start time.
    fn obs_cycle_start(&self) -> Option<Instant> {
        self.recorder.as_ref()?;
        let _ = crate::parallel::take_dispatch_stats();
        Some(Instant::now())
    }

    /// Emits the [`Event::Cycle`] for a communication cycle that just
    /// charged its metrics. No-op without a recorder.
    fn emit_comm(
        &mut self,
        obs: ObsCtx,
        threaded: bool,
        messages: u64,
        words: u64,
        dropped: u64,
        lanes: u32,
    ) {
        let phase = self.current_phase();
        let fault_epoch = self.faults.epoch();
        let cycle = self.metrics.comm_steps - 1;
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        let (dispatches, queue_ns, exec_ns) = crate::parallel::take_dispatch_stats();
        let event = Event::Cycle(CycleEvent {
            seq: rec.next_seq(),
            kind: CycleKind::Comm,
            cycle,
            steps: 1,
            phase,
            key: obs.key,
            cache: obs.cache,
            fault_epoch,
            messages,
            words,
            dropped,
            lanes,
            ops: 0,
            backend: if threaded {
                Backend::Threaded {
                    workers: crate::parallel::available_threads(),
                }
            } else {
                Backend::Sequential
            },
            at_ns: rec.now_ns(),
            dur_ns: obs
                .start
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0),
            pool: (dispatches > 0).then_some(PoolDispatchStats {
                dispatches,
                queue_ns,
                exec_ns,
            }),
        });
        rec.send(&event);
    }

    /// Emits the [`Event::Cycle`] for a computation phase that just
    /// charged `steps` cycles and `ops` element operations. No-op
    /// without a recorder.
    fn emit_comp(&mut self, start: Option<Instant>, threaded: bool, steps: u64, ops: u64) {
        let phase = self.current_phase();
        let fault_epoch = self.faults.epoch();
        let cycle = self.metrics.comp_steps - steps;
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        let (dispatches, queue_ns, exec_ns) = crate::parallel::take_dispatch_stats();
        let event = Event::Cycle(CycleEvent {
            seq: rec.next_seq(),
            kind: CycleKind::Comp,
            cycle,
            steps,
            phase,
            key: None,
            cache: CacheStatus::Unkeyed,
            fault_epoch,
            messages: 0,
            words: 0,
            dropped: 0,
            lanes: 1,
            ops,
            backend: if threaded {
                Backend::Threaded {
                    workers: crate::parallel::available_threads(),
                }
            } else {
                Backend::Sequential
            },
            at_ns: rec.now_ns(),
            dur_ns: start.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
            pool: (dispatches > 0).then_some(PoolDispatchStats {
                dispatches,
                queue_ns,
                exec_ns,
            }),
        });
        rec.send(&event);
    }

    /// One communication cycle. `plan(u, state)` returns the (destination,
    /// message) this node sends, or `None` to stay silent; `deliver` runs
    /// at each receiving node. Returns the number of messages delivered.
    ///
    /// Steady-state cycles are **allocation-free** (with tracing off): the
    /// plan, validation, and inbox buffers live in machine-owned scratch
    /// storage and are reused across cycles, so a cycle loop touches the
    /// heap only on its first iteration (or when the message type `M`
    /// changes between cycles).
    ///
    /// # Errors
    ///
    /// Any violation of the 1-port synchronous model: sending to a
    /// non-neighbour or to itself, an id out of range, or two messages
    /// converging on one receiver. On error the cycle is *not* applied and
    /// no step is counted, so a test can probe illegal schedules without
    /// corrupting the machine.
    pub fn try_exchange<M: Send + Sync + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        self.try_exchange_sized(plan, deliver, |_| 1)
    }

    /// [`Machine::try_exchange`] with explicit payload sizes: `words(msg)`
    /// reports how many elements the message carries, feeding
    /// [`Metrics::message_words`] (block-transfer algorithms pass the
    /// block length; everything else uses the 1-word default).
    pub fn try_exchange_sized<M: Send + Sync + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let start = self.obs_cycle_start();
        self.exchange_inner(plan, deliver, words, None, ObsCtx::unkeyed(start))
    }

    /// [`Machine::try_exchange_sized`] under a [`ScheduleKey`]: the first
    /// cycle with `key` validates fully and compiles the pattern; later
    /// cycles replay it (see the [`crate::schedule`] module docs).
    ///
    /// # Errors
    ///
    /// On the compile cycle, exactly [`Machine::try_exchange_sized`]'s
    /// errors. On a replay cycle, a plan that no longer matches the
    /// compiled pattern fails with [`SimError::ScheduleDeviation`] (for
    /// the lowest deviating node, deterministically on every backend);
    /// the cycle is not applied and no step is counted.
    pub fn try_exchange_keyed_sized<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let start = self.obs_cycle_start();
        if !self.replay {
            return self.exchange_inner(
                plan,
                deliver,
                words,
                None,
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Bypass,
                    start,
                },
            );
        }
        // Apply due fault events *before* consulting the cache: a crash
        // at this boundary bumps the epoch and must veto the replay.
        self.advance_faults();
        if self.schedules.contains(key) {
            let result = self.replay_cycle(
                key,
                plan,
                deliver,
                words,
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Hit,
                    start,
                },
            );
            if result.is_ok() {
                self.metrics.schedule_hits += 1;
            }
            result
        } else {
            let result = self.exchange_inner(
                plan,
                deliver,
                words,
                Some(key),
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Miss,
                    start,
                },
            );
            if result.is_ok() {
                self.metrics.schedule_misses += 1;
            }
            result
        }
    }

    /// One-word-payload form of [`Machine::try_exchange_keyed_sized`].
    pub fn try_exchange_keyed<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        self.try_exchange_keyed_sized(key, plan, deliver, |_| 1)
    }

    /// Panicking form of [`Machine::try_exchange_keyed`].
    #[track_caller]
    pub fn exchange_keyed<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_exchange_keyed(key, plan, deliver) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Panicking form of [`Machine::try_exchange_keyed_sized`].
    #[track_caller]
    pub fn exchange_keyed_sized<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_exchange_keyed_sized(key, plan, deliver, words) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// The full (non-replay) communication cycle: plan, validate,
    /// optionally compile the pattern under `capture`, deliver.
    fn exchange_inner<M: Send + Sync + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
        capture: Option<ScheduleKey>,
        obs: ObsCtx,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        self.advance_faults();
        let n = self.states.len();
        let threaded = self.threaded();
        let record_links = self.recorder.is_some();
        // Resolve the flat link-table stride before scratch is borrowed
        // (lazy: unrecorded machines never compute it).
        let ports = if record_links { self.link_ports() } else { 0 };

        // Resolve the shard-aligned dispatch bounds before scratch is
        // borrowed field-by-field below (the rebuild needs `&mut self`).
        if threaded {
            self.shard_bounds();
        }

        // Phase 1 — plan: read-only over the states, one slot per node,
        // written into the reusable scratch buffer. The claim table is
        // reset shard-locally inside validation pass A, so the plan
        // dispatch stays a pure read of the states.
        let plans = self.scratch.plans.cleared::<Option<(NodeId, M)>>();
        if threaded {
            plans.resize_with(n, || None);
            par_zip_apply(plans, &self.states, &|u, slot, s| {
                *slot = plan(u, s);
            });
        } else {
            plans.extend(self.states.iter().enumerate().map(|(u, s)| plan(u, s)));
        }

        // Phase 2 — validate the cycle before touching any state. The
        // sequential backend walks the plans in node order and stops at
        // the first violation. The threaded backend runs the sharded
        // claim passes and reports the lowest-index violation, which
        // is provably the same one (see the doc of `validate_sharded`).
        let acc = if threaded {
            Self::validate_sharded(
                self.topo,
                plans,
                &mut self.scratch.claims,
                &mut self.scratch.exchange,
                &self.scratch.shard_bounds,
                &self.faults,
                &words,
                n,
            )
        } else {
            Self::validate_sequential(
                self.topo,
                plans,
                &mut self.scratch.recv_from,
                &self.faults,
                &words,
                n,
            )
        };
        if let Some((_, e)) = acc.violation {
            // Drop the undelivered messages eagerly rather than letting
            // them linger in scratch until the next cycle overwrites it.
            plans.clear();
            return Err(e);
        }
        if let Some(trace) = self.trace.as_mut() {
            let phase = self.metrics.phases.len().checked_sub(1).map(|i| i as u32);
            trace.push((
                phase,
                plans
                    .iter()
                    .enumerate()
                    .filter_map(|(src, p)| p.as_ref().map(|&(dst, _)| (src, dst)))
                    .collect(),
            ));
        }

        // Compile the validated pattern before delivery consumes the
        // plans (only on a keyed cycle's first sighting — the one place
        // a steady-state cycle is allowed to allocate).
        let compiled = capture.map(|key| {
            // Construction already bounds node counts below `NO_SRC`.
            debug_assert!(n < NO_SRC as usize);
            let mut enc = vec![NO_SRC; n];
            for (src, p) in plans.iter().enumerate() {
                if let Some((dst, _)) = p {
                    enc[src] |= SENDS_BIT;
                    enc[*dst] = (enc[*dst] & SENDS_BIT) | src as u32;
                }
            }
            CompiledSchedule {
                key,
                enc,
                delivered: acc.delivered,
                epoch: self.faults.epoch(),
                acct: None,
            }
        });

        // Phase 3 — deliver. The validated matching guarantees at most one
        // inbound message per node, so the parallel backend scatters the
        // messages into a per-node inbox (also reusable scratch) and lets
        // each worker mutate only its own node's state. Messages to a
        // node with an armed drop are lost here — after validation (the
        // sender cannot tell) but before delivery, excluded from the
        // delivered/words counters. The compiled pattern above keeps the
        // *full* matching: drops are transient, schedules are not.
        let drops_active = self.faults.has_drops();
        // Link accounting (simulated utilization, not wall-clock) runs
        // only while a recorder is installed — the `false` branch keeps
        // the common path to one boolean test per delivered message.
        let mut dropped = 0u64;
        let mut dropped_words = 0u64;
        if threaded {
            // Split inbox: packed `u32` sources + payload slab. The
            // staging loop runs on this thread, so the source array needs
            // no clearing — delivery gates on the payload `Option`, which
            // the warm-slab discipline keeps all-`None` between cycles.
            let srcs = &mut self.scratch.inbox_src;
            if srcs.len() != n {
                srcs.clear();
                srcs.resize(n, NO_SRC);
            }
            let payload = self.scratch.payload.warm::<M>(n);
            for (src, p) in plans.iter_mut().enumerate() {
                if let Some((dst, msg)) = p.take() {
                    if drops_active && self.faults.dropped(dst) {
                        dropped += 1;
                        dropped_words += words(&msg);
                    } else {
                        if record_links {
                            let w = words(&msg);
                            let cross = self.topo.is_cross_edge(src, dst);
                            self.metrics.link_util.record(cross, w);
                            let slot = link_slot(self.topo, ports, src, dst);
                            if let Some(rec) = self.recorder.as_mut() {
                                rec.record_link(slot, w, cross);
                            }
                        }
                        srcs[dst] = src as u32;
                        payload[dst] = Some(msg);
                    }
                }
            }
            let srcs: &[u32] = srcs;
            par_lane_apply_bounds(
                &self.scratch.shard_bounds,
                &mut self.states,
                1,
                payload,
                &|u, s, slot| {
                    if let Some(msg) = slot[0].take() {
                        deliver(s, srcs[u] as usize, msg);
                    }
                },
            );
        } else {
            for (src, p) in plans.iter_mut().enumerate() {
                if let Some((dst, msg)) = p.take() {
                    if drops_active && self.faults.dropped(dst) {
                        dropped += 1;
                        dropped_words += words(&msg);
                    } else {
                        if record_links {
                            let w = words(&msg);
                            let cross = self.topo.is_cross_edge(src, dst);
                            self.metrics.link_util.record(cross, w);
                            let slot = link_slot(self.topo, ports, src, dst);
                            if let Some(rec) = self.recorder.as_mut() {
                                rec.record_link(slot, w, cross);
                            }
                        }
                        deliver(&mut self.states[dst], src, msg);
                    }
                }
            }
        }
        self.metrics
            .record_comm_words(acc.delivered as u64 - dropped, acc.words - dropped_words);
        self.metrics.dropped_messages += dropped;
        if drops_active {
            self.faults.clear_drops();
        }
        if let Some(c) = compiled {
            // No eviction to handle: stale same-key entries cannot exist
            // (the epoch sweep in `sync_schedule_epoch` removed them
            // before this cycle consulted the cache).
            self.schedules.insert(c);
        }
        self.emit_comm(
            obs,
            threaded,
            acc.delivered as u64 - dropped,
            acc.words - dropped_words,
            dropped,
            1,
        );
        Ok(acc.delivered - dropped as usize)
    }

    /// The sequential backend's validation: one walk over the plans in
    /// node order, stopping at the first violation. `recv_from` is the
    /// reusable receive-conflict table (reset here each cycle).
    fn validate_sequential<M: Send + Sync + 'static>(
        topo: &T,
        plans: &[Option<(NodeId, M)>],
        recv_from: &mut Vec<u32>,
        faults: &FaultState,
        words: &(impl Fn(&M) -> u64 + Sync),
        n: usize,
    ) -> CycleAcc {
        recv_from.clear();
        recv_from.resize(n, NO_SRC);
        let mut acc = CycleAcc::EMPTY;
        for (src, p) in plans.iter().enumerate() {
            if let Some((dst, msg)) = p {
                let dst = *dst;
                if dst >= n {
                    acc.violate(
                        src,
                        SimError::OutOfRange {
                            node: dst,
                            num_nodes: n,
                        },
                    );
                } else if dst == src {
                    acc.violate(src, SimError::SelfMessage { node: src });
                } else if faults.is_failed(src) {
                    acc.violate(src, SimError::NodeFailed { node: src });
                } else if faults.is_failed(dst) {
                    acc.violate(src, SimError::NodeFailed { node: dst });
                } else if !topo.is_edge(src, dst) {
                    acc.violate(src, SimError::NotAdjacent { src, dst });
                } else if faults.link_is_down(src, dst) {
                    acc.violate(src, SimError::LinkDown { src, dst });
                } else if recv_from[dst] != NO_SRC {
                    acc.violate(
                        src,
                        SimError::RecvConflict {
                            node: dst,
                            first_src: recv_from[dst] as usize,
                            second_src: src,
                        },
                    );
                }
                if acc.violation.is_some() {
                    break;
                }
                recv_from[dst] = src as u32;
                acc.delivered += 1;
                acc.words += words(msg);
            }
        }
        acc
    }

    /// The threaded backend's deterministic validation, sharded: claim
    /// passes with **no cross-shard atomics** anywhere.
    ///
    /// **Pass A (local checks + shard-local claims).** Each dispatch slot
    /// owns a shard-aligned node range (see `ShardMap::slot_bounds_into`):
    /// it resets its own claim range, clears its own exchange row, then
    /// checks its senders in the sequential order — out-of-range →
    /// self-message → failed endpoint → non-adjacent → downed link (all
    /// position-independent). A locally *valid* sender whose receiver
    /// lives in the same range min-merges into the plain claim cell
    /// directly; a cross-shard receiver is staged as `(src, dst)` into the
    /// owning row's bin for the destination slot (single producer).
    /// **Pass B (drain).** Each slot drains every row's bin addressed to
    /// it (single consumer) and min-merges into its own claim range, so
    /// after the barrier `claims[dst]` holds the exact minimum
    /// locally-valid sender targeting `dst` — the same value the old
    /// atomic `fetch_min` converged to, now with plain `u32` stores.
    /// **Pass C (conflicts).** Every sender whose claim cell names someone
    /// else records a receive conflict. All passes reduce the
    /// lowest-sender-index violation (counters summing alongside), folded
    /// in slot order, then pass A's result merges before pass C's.
    ///
    /// Why this reproduces the sequential report bit-identically: the
    /// sequential walk surfaces the violation with the lowest sender
    /// index, checking locally before conflicts at each sender. Local
    /// violations are position-independent, so pass A finds the same set.
    /// For conflicts, the sequential walk fingers the *second-lowest*
    /// sender of the contested receiver and names the lowest as
    /// `first_src` — exactly what the exact-min claim cell + "am I the
    /// claimant?" yields, at any slot count, because pass A + B compute
    /// the true minimum regardless of scheduling. A locally-invalid
    /// sender never claims, and any bogus conflict pass C records for it
    /// sits at the same index as its pass-A local violation, which the
    /// merge-order tiebreak (pass A first) discards — mirroring the
    /// sequential per-sender check order.
    #[allow(clippy::too_many_arguments)]
    fn validate_sharded<M: Send + Sync + 'static>(
        topo: &T,
        plans: &[Option<(NodeId, M)>],
        claims: &mut Vec<u32>,
        exchange: &mut Vec<ExchangeRow>,
        bounds: &[usize],
        faults: &FaultState,
        words: &(impl Fn(&M) -> u64 + Sync),
        n: usize,
    ) -> CycleAcc {
        let slots = bounds.len() - 1;
        if claims.len() != n {
            claims.clear();
            claims.resize(n, NO_SRC);
        }
        if exchange.len() != slots {
            exchange.resize_with(slots, ExchangeRow::default);
        }
        for row in exchange.iter_mut() {
            if row.bins.len() != slots {
                row.bins.resize_with(slots, Vec::new);
            }
        }
        let local = par_slab_reduce(
            bounds,
            claims.as_mut_slice(),
            exchange.as_mut_slice(),
            CycleAcc::EMPTY,
            &|_slot, start, chunk, row, acc| {
                chunk.fill(NO_SRC);
                for bin in row.bins.iter_mut() {
                    bin.clear();
                }
                let end = start + chunk.len();
                for (off, p) in plans[start..end].iter().enumerate() {
                    let src = start + off;
                    let Some((dst, msg)) = p else {
                        continue;
                    };
                    let dst = *dst;
                    if dst >= n {
                        acc.violate(
                            src,
                            SimError::OutOfRange {
                                node: dst,
                                num_nodes: n,
                            },
                        );
                    } else if dst == src {
                        acc.violate(src, SimError::SelfMessage { node: src });
                    } else if faults.is_failed(src) {
                        acc.violate(src, SimError::NodeFailed { node: src });
                    } else if faults.is_failed(dst) {
                        acc.violate(src, SimError::NodeFailed { node: dst });
                    } else if !topo.is_edge(src, dst) {
                        acc.violate(src, SimError::NotAdjacent { src, dst });
                    } else if faults.link_is_down(src, dst) {
                        acc.violate(src, SimError::LinkDown { src, dst });
                    } else {
                        // `src < n < NO_SRC` by the construction bound,
                        // so packed claims order exactly like node ids.
                        if dst >= start && dst < end {
                            let c = &mut chunk[dst - start];
                            if (src as u32) < *c {
                                *c = src as u32;
                            }
                        } else {
                            let dst_slot = bounds.partition_point(|&b| b <= dst) - 1;
                            row.bins[dst_slot].push((src as u32, dst as u32));
                        }
                        acc.delivered += 1;
                        acc.words += words(msg);
                    }
                }
            },
            CycleAcc::merge,
        );
        if local.violation.is_none() && local.delivered == 0 {
            // Nobody spoke: no claims were made, so no conflicts exist.
            return local;
        }
        if exchange
            .iter()
            .any(|row| row.bins.iter().any(|b| !b.is_empty()))
        {
            // Pass B runs only when pass A actually staged a cross-shard
            // claim. The rows are read-only here (captured shared); the
            // per-slot slabs are unit placeholders since each slot's
            // exclusive write target is its claim range.
            let rows: &[ExchangeRow] = exchange;
            let mut units = [(); 32];
            par_slab_reduce(
                bounds,
                claims.as_mut_slice(),
                &mut units[..slots],
                (),
                &|slot, start, chunk, _unit, _acc| {
                    for row in rows {
                        for &(src, dst) in &row.bins[slot] {
                            let c = &mut chunk[dst as usize - start];
                            if src < *c {
                                *c = src;
                            }
                        }
                    }
                },
                |(), ()| (),
            );
        }
        let claims: &[u32] = claims;
        let conflicts = par_for_reduce(
            n,
            CycleAcc::EMPTY,
            &|src, acc| {
                if let Some((dst, _)) = &plans[src] {
                    let dst = *dst;
                    if dst < n && dst != src {
                        let first = claims[dst] as usize;
                        if first != src {
                            acc.violate(
                                src,
                                SimError::RecvConflict {
                                    node: dst,
                                    first_src: first,
                                    second_src: src,
                                },
                            );
                        }
                    }
                }
            },
            CycleAcc::merge,
        );
        local.merge(conflicts)
    }

    /// A keyed cycle served from the cache: one fused plan+verify+scatter
    /// pass, then deliver. Each receiver `u` evaluates its compiled
    /// sender's plan straight into `u`'s own inbox slot (so the pass
    /// parallelises with zero cross-chunk writes); nodes the schedule
    /// says are silent evaluate their own plan and check it still is
    /// silent. Every node's plan is thus evaluated exactly once — same as
    /// the full path — and any deviation from the compiled pattern fails
    /// the cycle deterministically before any state is touched.
    fn replay_cycle<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
        obs: ObsCtx,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let n = self.states.len();
        let threaded = self.threaded();
        let record_links = self.recorder.is_some();
        if record_links {
            // Resolve the link-table stride eagerly: the deferred flush
            // helpers treat an unresolved stride as "no counts pending".
            self.link_ports();
            // Lazily attach the deferred-accounting plan on a recorded
            // replay's first sighting of this schedule. The cross-edge
            // bitset is schedule-determined, so it is computed once here
            // and the per-cycle loop below never calls into the topology.
            let topo = self.topo;
            let sched = self
                .schedules
                .get_mut(key)
                .expect("caller checked the cache");
            if sched.acct.is_none() {
                let mut acct = Box::new(AcctPlan::new(n));
                for (dst, &e) in sched.enc.iter().enumerate() {
                    let src = (e & NO_SRC) as usize;
                    if src != NO_SRC as usize && topo.is_cross_edge(src, dst) {
                        acct.set_cross(dst);
                    }
                }
                sched.acct = Some(acct);
            }
        }
        if threaded {
            self.shard_bounds();
        }
        let sched = self
            .schedules
            .get_mut(key)
            .expect("caller checked the cache");
        let sched_delivered = sched.delivered;
        // Split inbox: `srcs[u]` carries the packed sender (`NO_SRC` =
        // silent), written unconditionally by every receiver's fused
        // pass, so stale values never leak across cycles (and the array
        // needs no per-cycle clearing); the payload slab holds the
        // message and stays the move-out gate.
        let srcs = &mut self.scratch.inbox_src;
        if srcs.len() != n {
            srcs.clear();
            srcs.resize(n, NO_SRC);
        }
        let payload = self.scratch.payload.warm::<M>(n);
        let states = &self.states;
        let faults = &self.faults;
        // Crashes and link cuts bump the epoch, which evicts the
        // schedule before we get here — so a replayed pattern is legal
        // by construction and only *drops* (transient, no bump) need
        // handling: the dropped message is validated but never staged.
        let drops_active = faults.has_drops();
        let enc = &sched.enc[..];
        let eval = |u: usize, src_slot: &mut u32, slot: &mut Option<M>, acc: &mut CycleAcc| {
            *src_slot = NO_SRC;
            let e = enc[u];
            let src = (e & NO_SRC) as usize;
            if src != NO_SRC as usize {
                match plan(src, &states[src]) {
                    Some((dst, msg)) if dst == u => {
                        if drops_active && faults.dropped(u) {
                            // Lost in flight; counted after the pass.
                        } else {
                            acc.delivered += 1;
                            acc.words += words(&msg);
                            *src_slot = src as u32;
                            *slot = Some(msg);
                        }
                    }
                    _ => acc.violate(src, SimError::ScheduleDeviation { key, node: src }),
                }
            }
            if e & SENDS_BIT == 0 && plan(u, &states[u]).is_some() {
                acc.violate(u, SimError::ScheduleDeviation { key, node: u });
            }
        };
        let acc = if threaded {
            par_lane_reduce_bounds(
                &self.scratch.shard_bounds,
                srcs,
                1,
                payload,
                CycleAcc::EMPTY,
                &|u, src_slot, window, acc| eval(u, src_slot, &mut window[0], acc),
                CycleAcc::merge,
            )
        } else {
            let mut acc = CycleAcc::EMPTY;
            for (u, (src_slot, slot)) in srcs.iter_mut().zip(payload.iter_mut()).enumerate() {
                eval(u, src_slot, slot, &mut acc);
            }
            acc
        };
        if let Some((_, e)) = acc.violation {
            // The deviating cycle is not applied: drop anything staged
            // (restoring the payload slab's all-`None` warm invariant).
            for slot in payload.iter_mut() {
                *slot = None;
            }
            return Err(e);
        }
        if let Some(trace) = self.trace.as_mut() {
            let phase = self.metrics.phases.len().checked_sub(1).map(|i| i as u32);
            trace.push((phase, sched.trace_pairs()));
        }
        // Deferred link accounting over the staged inbox (one slot per
        // delivered message — drops were excluded during the fused pass).
        // Replay schedules are fixed, so the per-dst counts accumulate in
        // the schedule's `AcctPlan` and resolve to link slots only at the
        // flush points; the cycle itself pays two plain increments and a
        // precomputed cross bit per message — no `port_of` resolution.
        if record_links {
            let acct = sched.acct.as_deref_mut().expect("attached above");
            let mut util = LinkUtil::default();
            for (dst, slot) in payload.iter().enumerate() {
                if let Some(msg) = slot {
                    let w = words(msg);
                    acct.msgs[dst] += 1;
                    acct.words[dst] += w;
                    util.record(acct.is_cross(dst), w);
                }
            }
            acct.dirty = true;
            self.metrics.link_util.add_bulk(util);
        }
        let srcs: &[u32] = srcs;
        if threaded {
            par_lane_apply_bounds(
                &self.scratch.shard_bounds,
                &mut self.states,
                1,
                payload,
                &|u, s, slot| {
                    if let Some(msg) = slot[0].take() {
                        deliver(s, srcs[u] as usize, msg);
                    }
                },
            );
        } else {
            for (u, slot) in payload.iter_mut().enumerate() {
                if let Some(msg) = slot.take() {
                    deliver(&mut self.states[u], srcs[u] as usize, msg);
                }
            }
        }
        let delivered = acc.delivered;
        let dropped = (sched_delivered - delivered) as u64;
        self.metrics.record_comm_words(delivered as u64, acc.words);
        self.metrics.dropped_messages += dropped;
        if drops_active {
            self.faults.clear_drops();
        }
        self.emit_comm(obs, threaded, delivered as u64, acc.words, dropped, 1);
        Ok(delivered)
    }

    /// [`Machine::try_exchange`] that panics on a model violation — the
    /// form algorithm implementations use, since their schedules are
    /// supposed to be legal by construction. Steady-state cycles are
    /// allocation-free — see [`Machine::try_exchange`].
    #[track_caller]
    pub fn exchange<M: Send + Sync + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_exchange(plan, deliver) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Fills `out` with each node's chosen partner, packed via
    /// [`pack_partner`], in parallel when threaded. (`out` is the
    /// reusable scratch buffer, moved out of `self` during the call so
    /// the state borrow stays clean.)
    fn collect_partners_into(
        &self,
        pair: &(impl Fn(NodeId, &S) -> Option<NodeId> + Sync),
        out: &mut Vec<u32>,
    ) where
        S: Send + Sync,
    {
        out.clear();
        if self.threaded() {
            out.resize(self.states.len(), NO_PARTNER);
            par_zip_apply(out, &self.states, &|u, slot, s| {
                *slot = pack_partner(pair(u, s));
            });
        } else {
            out.extend(
                self.states
                    .iter()
                    .enumerate()
                    .map(|(u, s)| pack_partner(pair(u, s))),
            );
        }
    }

    /// One symmetric pairwise exchange cycle: `pair(u, state)` names `u`'s
    /// partner (or `None` to sit out); partners must name each other.
    /// Every participating node sends `msg(u, state)` to its partner and
    /// `deliver(state, partner, message)` runs at each participant.
    ///
    /// Like [`Machine::try_exchange`], steady-state cycles perform zero
    /// heap allocations (the partner table is machine-owned scratch too).
    ///
    /// # Errors
    ///
    /// [`SimError::AsymmetricPair`] if the matching is not symmetric, plus
    /// everything [`Machine::try_exchange`] can report.
    pub fn try_pairwise<M: Send + Sync + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        self.try_pairwise_sized(pair, msg, deliver, |_| 1)
    }

    /// [`Machine::try_pairwise`] with explicit payload sizes (see
    /// [`Machine::try_exchange_sized`]).
    pub fn try_pairwise_sized<M: Send + Sync + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let start = self.obs_cycle_start();
        self.pairwise_inner(pair, msg, deliver, words, None, ObsCtx::unkeyed(start))
    }

    /// [`Machine::try_pairwise_sized`] under a [`ScheduleKey`]. A replay
    /// cycle skips the symmetry pre-pass along with the rest of
    /// validation: symmetry is a property of the pattern, and the pattern
    /// is re-checked against the compiled schedule (an asymmetric
    /// deviation surfaces as [`SimError::ScheduleDeviation`]).
    ///
    /// ```
    /// use dc_simulator::{Machine, ScheduleKey};
    /// use dc_topology::Hypercube;
    ///
    /// let q = Hypercube::new(3);
    /// let mut m = Machine::new(&q, (0..8u64).collect::<Vec<_>>());
    /// for sweep in 0..2 {
    ///     for i in 0..3u32 {
    ///         m.pairwise_keyed(
    ///             ScheduleKey::Dim(i),
    ///             move |u, _| Some(u ^ (1 << i)),
    ///             |_, &s| s,
    ///             |s, _, v| *s += v,
    ///         );
    ///     }
    /// }
    /// // The second sweep replayed the three patterns the first compiled.
    /// assert_eq!(m.metrics().schedule_misses, 3);
    /// assert_eq!(m.metrics().schedule_hits, 3);
    /// ```
    pub fn try_pairwise_keyed_sized<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let start = self.obs_cycle_start();
        if !self.replay {
            return self.pairwise_inner(
                pair,
                msg,
                deliver,
                words,
                None,
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Bypass,
                    start,
                },
            );
        }
        // As in `try_exchange_keyed_sized`: fault events first, so an
        // epoch bump at this boundary forces the recompile path.
        self.advance_faults();
        if self.schedules.contains(key) {
            let result = self.replay_cycle(
                key,
                |u, s| pair(u, s).map(|v| (v, msg(u, s))),
                deliver,
                words,
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Hit,
                    start,
                },
            );
            if result.is_ok() {
                self.metrics.schedule_hits += 1;
            }
            result
        } else {
            let result = self.pairwise_inner(
                pair,
                msg,
                deliver,
                words,
                Some(key),
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Miss,
                    start,
                },
            );
            if result.is_ok() {
                self.metrics.schedule_misses += 1;
            }
            result
        }
    }

    /// One-word-payload form of [`Machine::try_pairwise_keyed_sized`].
    pub fn try_pairwise_keyed<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        self.try_pairwise_keyed_sized(key, pair, msg, deliver, |_| 1)
    }

    /// Panicking form of [`Machine::try_pairwise_keyed`].
    #[track_caller]
    pub fn pairwise_keyed<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_pairwise_keyed(key, pair, msg, deliver) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Panicking form of [`Machine::try_pairwise_keyed_sized`].
    #[track_caller]
    pub fn pairwise_keyed_sized<M: Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_pairwise_keyed_sized(key, pair, msg, deliver, words) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// The pairwise symmetry pre-check: every named partner must name
    /// back. The threaded form is pure reads of the shared partner table
    /// reduced to the lowest-index violation — identical to the
    /// sequential first-hit-in-node-order report.
    fn validate_symmetry(partners: &[u32], n: usize, threaded: bool) -> Result<(), SimError> {
        if threaded {
            let table = partners;
            let acc = par_for_reduce(
                n,
                CycleAcc::EMPTY,
                &|u, acc| {
                    let p = table[u];
                    if p != NO_PARTNER {
                        let v = p as usize;
                        if v >= n {
                            acc.violate(
                                u,
                                SimError::OutOfRange {
                                    node: v,
                                    num_nodes: n,
                                },
                            );
                        } else if table[v] != u as u32 {
                            acc.violate(u, SimError::AsymmetricPair { a: u, b: v });
                        }
                    }
                },
                CycleAcc::merge,
            );
            match acc.violation {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        } else {
            for (u, &p) in partners.iter().enumerate() {
                if p != NO_PARTNER {
                    let v = p as usize;
                    if v >= n {
                        return Err(SimError::OutOfRange {
                            node: v,
                            num_nodes: n,
                        });
                    }
                    if partners[v] != u as u32 {
                        return Err(SimError::AsymmetricPair { a: u, b: v });
                    }
                }
            }
            Ok(())
        }
    }

    /// The full (non-replay) pairwise cycle: partner collection, symmetry
    /// pre-validation, then the exchange (optionally compiling under
    /// `capture`).
    fn pairwise_inner<M: Send + Sync + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
        capture: Option<ScheduleKey>,
        obs: ObsCtx,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let n = self.states.len();
        // Pre-validate symmetry so the error is precise (try_exchange
        // would report it as a receive conflict or not at all). The
        // partner table is reusable scratch, moved out for the duration
        // of the cycle and always restored before returning.
        let mut partners = std::mem::take(&mut self.scratch.partners);
        self.collect_partners_into(&pair, &mut partners);
        let symmetric = Self::validate_symmetry(&partners, n, self.threaded());
        let result = match symmetric {
            Ok(()) => self.exchange_inner(
                |u, s| {
                    let p = partners[u];
                    (p != NO_PARTNER).then(|| (p as usize, msg(u, s)))
                },
                |s, from, m| deliver(s, from, m),
                words,
                capture,
                obs,
            ),
            Err(e) => Err(e),
        };
        self.scratch.partners = partners;
        result
    }

    /// Panicking form of [`Machine::try_pairwise_sized`].
    #[track_caller]
    pub fn pairwise_sized<M: Send + Sync + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_pairwise_sized(pair, msg, deliver, words) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Panicking form of [`Machine::try_exchange_sized`].
    #[track_caller]
    pub fn exchange_sized<M: Send + Sync + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64 + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_exchange_sized(plan, deliver, words) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Panicking form of [`Machine::try_pairwise`]. Steady-state cycles
    /// are allocation-free — see [`Machine::try_pairwise`].
    #[track_caller]
    pub fn pairwise<M: Send + Sync + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_pairwise(pair, msg, deliver) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// One **lane-batched** communication cycle: K independent payload
    /// values ride each delivered message through a single plan /
    /// validate / deliver pass. `plan(u, state)` names the destination
    /// (payload-free — lanes are filled separately); `fill(src, state,
    /// window)` writes the sender's K lane values into the receiver's
    /// window of the machine-owned lane buffer; `deliver(state, src,
    /// window)` folds the window into the receiver. Each message is
    /// charged `lanes` words ([`Metrics::message_words`] =
    /// K·messages), so K batched instances cost exactly K single-lane
    /// runs in simulated words while sharing one cycle's engine
    /// overhead. Steady-state cycles are allocation-free: the lane
    /// buffer (`n × lanes` values) and the staged-sender table are
    /// machine-owned scratch, reused while `V` and `lanes` stay fixed.
    ///
    /// Within one cycle every `fill` observes the senders' *pre-cycle*
    /// states (staging completes before delivery mutates anything), so
    /// symmetric exchanges where both sides read each other are exact.
    ///
    /// # Errors
    ///
    /// Exactly [`Machine::try_exchange`]'s errors; on error the cycle is
    /// not applied and no step is counted.
    ///
    /// # Panics
    ///
    /// If `lanes == 0`.
    pub fn try_exchange_lanes<V: Clone + Send + Sync + 'static>(
        &mut self,
        lanes: usize,
        seed: &V,
        plan: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let start = self.obs_cycle_start();
        self.lanes_inner(
            lanes,
            seed,
            plan,
            fill,
            deliver,
            None,
            ObsCtx::unkeyed(start),
        )
    }

    /// [`Machine::try_exchange_lanes`] under a [`ScheduleKey`]: the
    /// first cycle compiles the pattern, later cycles replay it — one
    /// schedule lookup and one fused verify+stage pass for all K lanes
    /// (see [`Machine::try_exchange_keyed_sized`] for the replay
    /// contract).
    pub fn try_exchange_lanes_keyed<V: Clone + Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        lanes: usize,
        seed: &V,
        plan: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let start = self.obs_cycle_start();
        if !self.replay {
            return self.lanes_inner(
                lanes,
                seed,
                plan,
                fill,
                deliver,
                None,
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Bypass,
                    start,
                },
            );
        }
        // As in `try_exchange_keyed_sized`: fault events first, so an
        // epoch bump at this boundary forces the recompile path.
        self.advance_faults();
        if self.schedules.contains(key) {
            let result = self.replay_lanes_cycle(
                key,
                lanes,
                seed,
                plan,
                fill,
                deliver,
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Hit,
                    start,
                },
            );
            if result.is_ok() {
                self.metrics.schedule_hits += 1;
            }
            result
        } else {
            let result = self.lanes_inner(
                lanes,
                seed,
                plan,
                fill,
                deliver,
                Some(key),
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Miss,
                    start,
                },
            );
            if result.is_ok() {
                self.metrics.schedule_misses += 1;
            }
            result
        }
    }

    /// Panicking form of [`Machine::try_exchange_lanes_keyed`].
    #[track_caller]
    pub fn exchange_lanes_keyed<V: Clone + Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        lanes: usize,
        seed: &V,
        plan: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_exchange_lanes_keyed(key, lanes, seed, plan, fill, deliver) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Lane-batched form of [`Machine::try_pairwise`]: a symmetric
    /// matching with K payload values per message (see
    /// [`Machine::try_exchange_lanes`] for the lane contract).
    pub fn try_pairwise_lanes<V: Clone + Send + Sync + 'static>(
        &mut self,
        lanes: usize,
        seed: &V,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let start = self.obs_cycle_start();
        self.pairwise_lanes_inner(
            lanes,
            seed,
            pair,
            fill,
            deliver,
            None,
            ObsCtx::unkeyed(start),
        )
    }

    /// [`Machine::try_pairwise_lanes`] under a [`ScheduleKey`]. As with
    /// [`Machine::try_pairwise_keyed_sized`], a replay cycle skips the
    /// symmetry pre-pass: the pattern is re-checked against the compiled
    /// schedule instead.
    pub fn try_pairwise_lanes_keyed<V: Clone + Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        lanes: usize,
        seed: &V,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let start = self.obs_cycle_start();
        if !self.replay {
            return self.pairwise_lanes_inner(
                lanes,
                seed,
                pair,
                fill,
                deliver,
                None,
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Bypass,
                    start,
                },
            );
        }
        self.advance_faults();
        if self.schedules.contains(key) {
            let result = self.replay_lanes_cycle(
                key,
                lanes,
                seed,
                pair,
                fill,
                deliver,
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Hit,
                    start,
                },
            );
            if result.is_ok() {
                self.metrics.schedule_hits += 1;
            }
            result
        } else {
            let result = self.pairwise_lanes_inner(
                lanes,
                seed,
                pair,
                fill,
                deliver,
                Some(key),
                ObsCtx {
                    key: Some(key),
                    cache: CacheStatus::Miss,
                    start,
                },
            );
            if result.is_ok() {
                self.metrics.schedule_misses += 1;
            }
            result
        }
    }

    /// Panicking form of [`Machine::try_pairwise_lanes_keyed`].
    #[track_caller]
    pub fn pairwise_lanes_keyed<V: Clone + Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        lanes: usize,
        seed: &V,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_pairwise_lanes_keyed(key, lanes, seed, pair, fill, deliver) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// The full (non-replay) lane-batched pairwise cycle: partner
    /// collection and symmetry pre-validation exactly as
    /// [`Machine::try_pairwise`], then the lane exchange.
    #[allow(clippy::too_many_arguments)]
    fn pairwise_lanes_inner<V: Clone + Send + Sync + 'static>(
        &mut self,
        lanes: usize,
        seed: &V,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
        capture: Option<ScheduleKey>,
        obs: ObsCtx,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let n = self.states.len();
        // The partner table is reusable scratch, moved out for the
        // duration of the cycle and always restored before returning —
        // as in `pairwise_inner`.
        let mut partners = std::mem::take(&mut self.scratch.partners);
        self.collect_partners_into(&pair, &mut partners);
        let symmetric = Self::validate_symmetry(&partners, n, self.threaded());
        let result = match symmetric {
            Ok(()) => self.lanes_inner(
                lanes,
                seed,
                |u, _| {
                    let p = partners[u];
                    (p != NO_PARTNER).then_some(p as usize)
                },
                fill,
                deliver,
                capture,
                obs,
            ),
            Err(e) => Err(e),
        };
        self.scratch.partners = partners;
        result
    }

    /// The full (non-replay) lane-batched communication cycle: plan
    /// (destinations only), validate, optionally compile under
    /// `capture`, then stage every delivered message's K lane values
    /// into the receivers' windows and deliver. The validated pattern is
    /// identical to what [`Machine::try_exchange`] would compute for the
    /// same destinations, so lane cycles share the schedule cache with
    /// their single-lane counterparts.
    #[allow(clippy::too_many_arguments)]
    fn lanes_inner<V: Clone + Send + Sync + 'static>(
        &mut self,
        lanes: usize,
        seed: &V,
        plan: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
        capture: Option<ScheduleKey>,
        obs: ObsCtx,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        assert!(lanes > 0, "a lane-batched cycle needs at least one lane");
        self.advance_faults();
        let n = self.states.len();
        let threaded = self.threaded();
        let lane_words = lanes as u64;
        let record_links = self.recorder.is_some();
        let ports = if record_links { self.link_ports() } else { 0 };

        // Resolve the shard-aligned dispatch bounds before scratch is
        // borrowed field-by-field below (the rebuild needs `&mut self`).
        if threaded {
            self.shard_bounds();
        }

        // Phase 1 — plan. Destinations only: payloads go straight into
        // the lane windows after validation, so the plan slab carries
        // unit messages.
        let plans = self.scratch.plans.cleared::<Option<(NodeId, ())>>();
        if threaded {
            plans.resize_with(n, || None);
            par_zip_apply(plans, &self.states, &|u, slot, s| {
                *slot = plan(u, s).map(|dst| (dst, ()));
            });
        } else {
            plans.extend(
                self.states
                    .iter()
                    .enumerate()
                    .map(|(u, s)| plan(u, s).map(|dst| (dst, ()))),
            );
        }

        // Phase 2 — validate, with every message charged `lanes` words.
        let acc = if threaded {
            Self::validate_sharded(
                self.topo,
                plans,
                &mut self.scratch.claims,
                &mut self.scratch.exchange,
                &self.scratch.shard_bounds,
                &self.faults,
                &|_: &()| lane_words,
                n,
            )
        } else {
            Self::validate_sequential(
                self.topo,
                plans,
                &mut self.scratch.recv_from,
                &self.faults,
                &|_: &()| lane_words,
                n,
            )
        };
        if let Some((_, e)) = acc.violation {
            plans.clear();
            return Err(e);
        }
        if let Some(trace) = self.trace.as_mut() {
            let phase = self.metrics.phases.len().checked_sub(1).map(|i| i as u32);
            trace.push((
                phase,
                plans
                    .iter()
                    .enumerate()
                    .filter_map(|(src, p)| p.as_ref().map(|&(dst, _)| (src, dst)))
                    .collect(),
            ));
        }
        let compiled = capture.map(|key| {
            // Construction already bounds node counts below `NO_SRC`.
            debug_assert!(n < NO_SRC as usize);
            let mut enc = vec![NO_SRC; n];
            for (src, p) in plans.iter().enumerate() {
                if let Some((dst, _)) = p {
                    enc[src] |= SENDS_BIT;
                    enc[*dst] = (enc[*dst] & SENDS_BIT) | src as u32;
                }
            }
            CompiledSchedule {
                key,
                enc,
                delivered: acc.delivered,
                epoch: self.faults.epoch(),
                acct: None,
            }
        });

        // Phase 3 — stage + deliver. Staging fills each receiver's lane
        // window from its sender's *pre-cycle* state (states are only
        // read here); delivery then folds the windows in, each worker
        // touching only its own node's state and window.
        let drops_active = self.faults.has_drops();
        let mut dropped = 0u64;
        let lane_src = &mut self.scratch.lane_src;
        lane_src.clear();
        lane_src.resize(n, NO_SRC);
        let lanebuf = self.scratch.lanebuf.strided::<V>(n * lanes, seed);
        for (src, p) in plans.iter_mut().enumerate() {
            if let Some((dst, ())) = p.take() {
                if drops_active && self.faults.dropped(dst) {
                    dropped += 1;
                } else {
                    if record_links {
                        let cross = self.topo.is_cross_edge(src, dst);
                        self.metrics.link_util.record(cross, lane_words);
                        let slot = link_slot(self.topo, ports, src, dst);
                        if let Some(rec) = self.recorder.as_mut() {
                            rec.record_link(slot, lane_words, cross);
                        }
                    }
                    fill(
                        src,
                        &self.states[src],
                        &mut lanebuf[dst * lanes..(dst + 1) * lanes],
                    );
                    lane_src[dst] = src as u32;
                }
            }
        }
        if threaded {
            let srcs: &[u32] = lane_src;
            par_lane_apply_bounds(
                &self.scratch.shard_bounds,
                &mut self.states,
                lanes,
                lanebuf,
                &|u, s, window| {
                    if srcs[u] != NO_SRC {
                        deliver(s, srcs[u] as usize, window);
                    }
                },
            );
        } else {
            for (u, (s, window)) in self
                .states
                .iter_mut()
                .zip(lanebuf.chunks_exact_mut(lanes))
                .enumerate()
            {
                if lane_src[u] != NO_SRC {
                    deliver(s, lane_src[u] as usize, window);
                }
            }
        }
        let delivered = acc.delivered as u64 - dropped;
        self.metrics
            .record_comm_words(delivered, delivered * lane_words);
        self.metrics.dropped_messages += dropped;
        if drops_active {
            self.faults.clear_drops();
        }
        if let Some(c) = compiled {
            // No eviction to handle: the epoch sweep removed any stale
            // same-key entry before this cycle consulted the cache.
            self.schedules.insert(c);
        }
        self.emit_comm(
            obs,
            threaded,
            delivered,
            delivered * lane_words,
            dropped,
            lanes as u32,
        );
        Ok(acc.delivered - dropped as usize)
    }

    /// A lane-batched keyed cycle served from the cache: one fused
    /// verify+stage pass over the compiled pattern (each receiver checks
    /// its compiled sender's plan and fills its own lane window), then
    /// deliver — the replay contract of [`Machine::try_exchange_keyed_sized`]
    /// with K values riding each message.
    #[allow(clippy::too_many_arguments)]
    fn replay_lanes_cycle<V: Clone + Send + Sync + 'static>(
        &mut self,
        key: ScheduleKey,
        lanes: usize,
        seed: &V,
        plan: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        fill: impl Fn(NodeId, &S, &mut [V]) + Sync,
        deliver: impl Fn(&mut S, NodeId, &mut [V]) + Sync,
        obs: ObsCtx,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        assert!(lanes > 0, "a lane-batched cycle needs at least one lane");
        let n = self.states.len();
        let threaded = self.threaded();
        let lane_words = lanes as u64;
        let record_links = self.recorder.is_some();
        if record_links {
            // Same deferred-accounting setup as `replay_cycle`: resolve
            // the stride (flush helpers treat `None` as "nothing
            // pending") and attach the plan with its cross-edge bitset.
            self.link_ports();
            let topo = self.topo;
            let sched = self
                .schedules
                .get_mut(key)
                .expect("caller checked the cache");
            if sched.acct.is_none() {
                let mut acct = Box::new(AcctPlan::new(n));
                for (dst, &e) in sched.enc.iter().enumerate() {
                    let src = (e & NO_SRC) as usize;
                    if src != NO_SRC as usize && topo.is_cross_edge(src, dst) {
                        acct.set_cross(dst);
                    }
                }
                sched.acct = Some(acct);
            }
        }
        if threaded {
            self.shard_bounds();
        }
        let sched = self
            .schedules
            .get_mut(key)
            .expect("caller checked the cache");
        let sched_delivered = sched.delivered;
        let lane_src = &mut self.scratch.lane_src;
        // Every entry is written by the fused pass below, so only the
        // length matters — no clearing pass.
        lane_src.resize(n, NO_SRC);
        let lanebuf = self.scratch.lanebuf.strided::<V>(n * lanes, seed);
        let states = &self.states;
        let faults = &self.faults;
        let drops_active = faults.has_drops();
        let enc = &sched.enc[..];
        let eval = |u: usize, src_slot: &mut u32, window: &mut [V], acc: &mut CycleAcc| {
            *src_slot = NO_SRC;
            let e = enc[u];
            let src = (e & NO_SRC) as usize;
            if src != NO_SRC as usize {
                match plan(src, &states[src]) {
                    Some(dst) if dst == u => {
                        if drops_active && faults.dropped(u) {
                            // Lost in flight; counted after the pass.
                        } else {
                            acc.delivered += 1;
                            acc.words += lane_words;
                            fill(src, &states[src], window);
                            *src_slot = src as u32;
                        }
                    }
                    _ => acc.violate(src, SimError::ScheduleDeviation { key, node: src }),
                }
            }
            if e & SENDS_BIT == 0 && plan(u, &states[u]).is_some() {
                acc.violate(u, SimError::ScheduleDeviation { key, node: u });
            }
        };
        let acc = if threaded {
            par_lane_reduce_bounds(
                &self.scratch.shard_bounds,
                lane_src,
                lanes,
                lanebuf,
                CycleAcc::EMPTY,
                &|u, src_slot, window, acc| eval(u, src_slot, window, acc),
                CycleAcc::merge,
            )
        } else {
            let mut acc = CycleAcc::EMPTY;
            for (u, (src_slot, window)) in lane_src
                .iter_mut()
                .zip(lanebuf.chunks_exact_mut(lanes))
                .enumerate()
            {
                eval(u, src_slot, window, &mut acc);
            }
            acc
        };
        if let Some((_, e)) = acc.violation {
            // The deviating cycle is not applied: delivery never runs,
            // and the stale staged windows are gated off by the next
            // cycle's own staging.
            return Err(e);
        }
        if let Some(trace) = self.trace.as_mut() {
            let phase = self.metrics.phases.len().checked_sub(1).map(|i| i as u32);
            trace.push((phase, sched.trace_pairs()));
        }
        // Deferred link accounting over the staged senders (drops were
        // excluded during the fused pass) — see `replay_cycle`.
        if record_links {
            let acct = sched.acct.as_deref_mut().expect("attached above");
            let mut util = LinkUtil::default();
            for (dst, &src) in lane_src.iter().enumerate() {
                if src != NO_SRC {
                    acct.msgs[dst] += 1;
                    acct.words[dst] += lane_words;
                    util.record(acct.is_cross(dst), lane_words);
                }
            }
            acct.dirty = true;
            self.metrics.link_util.add_bulk(util);
        }
        if threaded {
            let srcs: &[u32] = lane_src;
            par_lane_apply_bounds(
                &self.scratch.shard_bounds,
                &mut self.states,
                lanes,
                lanebuf,
                &|u, s, window| {
                    if srcs[u] != NO_SRC {
                        deliver(s, srcs[u] as usize, window);
                    }
                },
            );
        } else {
            for (u, (s, window)) in self
                .states
                .iter_mut()
                .zip(lanebuf.chunks_exact_mut(lanes))
                .enumerate()
            {
                if lane_src[u] != NO_SRC {
                    deliver(s, lane_src[u] as usize, window);
                }
            }
        }
        let delivered = acc.delivered;
        let dropped = (sched_delivered - delivered) as u64;
        self.metrics.record_comm_words(delivered as u64, acc.words);
        self.metrics.dropped_messages += dropped;
        if drops_active {
            self.faults.clear_drops();
        }
        self.emit_comm(
            obs,
            threaded,
            delivered as u64,
            acc.words,
            dropped,
            lanes as u32,
        );
        Ok(delivered)
    }

    /// Runs `f` once per node, on the configured backend. With
    /// `respect_faults`, crashed nodes are skipped — their states are
    /// frozen at the moment of the crash (computation phases honour
    /// this; out-of-band [`Machine::setup`] does not).
    fn apply(&mut self, f: impl Fn(NodeId, &mut S) + Sync, respect_faults: bool)
    where
        S: Send,
    {
        let threaded = self.threaded();
        let faults = &self.faults;
        let states = &mut self.states;
        if respect_faults && faults.any_failed() {
            let frozen = |u: NodeId, s: &mut S| {
                if !faults.is_failed(u) {
                    f(u, s);
                }
            };
            if threaded {
                par_apply_forced(states, &frozen);
            } else {
                for (u, s) in states.iter_mut().enumerate() {
                    frozen(u, s);
                }
            }
        } else if threaded {
            par_apply_forced(states, &f);
        } else {
            for (u, s) in states.iter_mut().enumerate() {
                f(u, s);
            }
        }
    }

    /// One local computation **phase**, charged as `steps` computation
    /// cycles.
    ///
    /// `f` is invoked **exactly once** per node regardless of `steps`:
    /// `steps` is the simulated *duration* of the phase (a node-local
    /// computation that the cost model prices at `steps` cycles, e.g. a
    /// `k`-element local merge), not a repetition count. Algorithms whose
    /// per-cycle work really does differ cycle-to-cycle issue one
    /// `compute(1, …)` per cycle. This single-invocation semantics is
    /// pinned by the `compute_invokes_f_once_regardless_of_steps`
    /// regression test.
    ///
    /// `steps × num_nodes` element operations are charged to the
    /// fine-grained counter (nodes that do nothing this phase are the
    /// caller's business — the *step* cost is global, per the synchronous
    /// model); use [`Machine::compute_counted`] to charge a precise
    /// operation count.
    pub fn compute(&mut self, steps: u64, f: impl Fn(NodeId, &mut S) + Sync)
    where
        S: Send,
    {
        let start = self.obs_cycle_start();
        let threaded = self.threaded();
        let ops = steps * self.states.len() as u64;
        self.apply(f, true);
        self.metrics.record_comp(steps, ops);
        self.emit_comp(start, threaded, steps, ops);
    }

    /// Like [`Machine::compute`] but charges exactly `element_ops` total
    /// operations (for phases where only a subset of nodes works). As
    /// with [`Machine::compute`], `f` runs exactly once per node.
    pub fn compute_counted(
        &mut self,
        steps: u64,
        element_ops: u64,
        f: impl Fn(NodeId, &mut S) + Sync,
    ) where
        S: Send,
    {
        let start = self.obs_cycle_start();
        let threaded = self.threaded();
        self.apply(f, true);
        self.metrics.record_comp(steps, element_ops);
        self.emit_comp(start, threaded, steps, element_ops);
    }

    /// Applies `f` to every node *without* charging any simulated cost —
    /// for initial data placement and final result collection, which the
    /// paper's step counts exclude.
    pub fn setup(&mut self, f: impl Fn(NodeId, &mut S) + Sync)
    where
        S: Send,
    {
        self.apply(f, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::PAR_THRESHOLD;
    use dc_topology::Hypercube;

    fn machine(dim: u32) -> Machine<'static, Hypercube, u64> {
        // Leak a tiny topology to get a 'static reference in tests.
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(dim)));
        let n = topo.num_nodes();
        Machine::new(topo, (0..n as u64).collect())
    }

    #[test]
    fn exchange_delivers_and_counts() {
        let mut m = machine(2);
        // Everyone sends its value across dimension 0.
        let delivered = m.exchange(|u, &s| Some((u ^ 1, s)), |s, _, v| *s += v);
        assert_eq!(delivered, 4);
        assert_eq!(m.states(), &[1, 1, 5, 5]);
        assert_eq!(m.metrics().comm_steps, 1);
        assert_eq!(m.metrics().messages, 4);
    }

    #[test]
    fn non_adjacent_send_rejected() {
        let mut m = machine(2);
        let err = m
            .try_exchange(
                |u, &s| if u == 0 { Some((3, s)) } else { None },
                |_, _, _: u64| {},
            )
            .unwrap_err();
        assert_eq!(err, SimError::NotAdjacent { src: 0, dst: 3 });
        // Machine untouched, no step counted.
        assert_eq!(m.metrics().comm_steps, 0);
        assert_eq!(m.states(), &[0, 1, 2, 3]);
    }

    #[test]
    fn recv_conflict_rejected() {
        let mut m = machine(2);
        // Nodes 1 and 2 both send to node 0 (a neighbour of both in Q_2).
        let err = m
            .try_exchange(
                |u, &s| match u {
                    1 => Some((0, s)),
                    2 => Some((0, s)),
                    _ => None,
                },
                |_, _, _: u64| {},
            )
            .unwrap_err();
        match err {
            SimError::RecvConflict { node, .. } => assert_eq!(node, 0),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn self_message_rejected() {
        let mut m = machine(2);
        let err = m
            .try_exchange(
                |u, &s| if u == 1 { Some((1, s)) } else { None },
                |_, _, _: u64| {},
            )
            .unwrap_err();
        assert_eq!(err, SimError::SelfMessage { node: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = machine(2);
        let err = m
            .try_exchange(
                |u, &s| if u == 0 { Some((9, s)) } else { None },
                |_, _, _: u64| {},
            )
            .unwrap_err();
        assert_eq!(
            err,
            SimError::OutOfRange {
                node: 9,
                num_nodes: 4
            }
        );
    }

    #[test]
    fn asymmetric_pair_rejected() {
        let mut m = machine(2);
        let err = m
            .try_pairwise(
                |u, _| if u == 0 { Some(1) } else { None },
                |_, &s| s,
                |_, _, _| {},
            )
            .unwrap_err();
        assert_eq!(err, SimError::AsymmetricPair { a: 0, b: 1 });
    }

    #[test]
    #[should_panic(expected = "communication-model violation")]
    fn exchange_panics_on_violation() {
        let mut m = machine(2);
        m.exchange(
            |u, &s| if u == 0 { Some((3, s)) } else { None },
            |_, _, _: u64| {},
        );
    }

    #[test]
    fn pairwise_swaps_values() {
        let mut m = machine(3);
        m.pairwise(|u, _| Some(u ^ 0b100), |_, &s| s, |s, _, v| *s = v);
        assert_eq!(m.states(), &[4, 5, 6, 7, 0, 1, 2, 3]);
        assert_eq!(m.metrics().comm_steps, 1);
        assert_eq!(m.metrics().messages, 8);
    }

    #[test]
    fn partial_matching_allowed() {
        let mut m = machine(2);
        // Only the pair {0, 1} exchanges.
        let count = m.pairwise(
            |u, _| if u < 2 { Some(u ^ 1) } else { None },
            |_, &s| s,
            |s, _, v| *s = v,
        );
        assert_eq!(count, 2);
        assert_eq!(m.states(), &[1, 0, 2, 3]);
    }

    #[test]
    fn keyed_pairwise_compiles_then_replays_identically() {
        let mut plain = machine(3);
        let mut keyed = machine(3);
        plain.enable_trace();
        keyed.enable_trace();
        for _ in 0..4 {
            plain.pairwise(|u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
            keyed.pairwise_keyed(
                ScheduleKey::Dim(0),
                |u, _| Some(u ^ 1),
                |_, &s| s,
                |s, _, v| *s += v,
            );
        }
        assert_eq!(plain.states(), keyed.states());
        assert_eq!(plain.phased_trace(), keyed.phased_trace());
        assert_eq!(plain.metrics().comm_steps, keyed.metrics().comm_steps);
        assert_eq!(plain.metrics().messages, keyed.metrics().messages);
        assert_eq!(plain.metrics().message_words, keyed.metrics().message_words);
        assert_eq!(keyed.metrics().schedule_misses, 1);
        assert_eq!(keyed.metrics().schedule_hits, 3);
        assert_eq!(keyed.compiled_schedules(), 1);
    }

    #[test]
    fn keyed_exchange_partial_pattern_replays() {
        // A one-way, partial exchange (only node 0 speaks) exercises the
        // silent-node self-check of the replay pass.
        let mut m = machine(2);
        for round in 0..3u64 {
            let delivered = m.exchange_keyed(
                ScheduleKey::Custom(7),
                |u, &s| (u == 0).then_some((1, s)),
                |s, _, v| *s += v,
            );
            assert_eq!(delivered, 1, "round {round}");
        }
        assert_eq!(m.metrics().schedule_misses, 1);
        assert_eq!(m.metrics().schedule_hits, 2);
        assert_eq!(m.metrics().messages, 3);
    }

    #[test]
    fn deviating_replay_rejected_and_machine_untouched() {
        let mut m = machine(2);
        m.pairwise_keyed(
            ScheduleKey::Cross,
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s = v,
        );
        let before = m.states().to_vec();
        let comm = m.metrics().comm_steps;
        // Same key, different pattern: nodes pair across dim 1 instead.
        let err = m
            .try_pairwise_keyed(
                ScheduleKey::Cross,
                |u, _| Some(u ^ 2),
                |_, &s| s,
                |s, _, v| *s = v,
            )
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ScheduleDeviation {
                key: ScheduleKey::Cross,
                node: 0
            }
        );
        assert_eq!(m.states(), &before[..], "deviating cycle must not apply");
        assert_eq!(m.metrics().comm_steps, comm, "no step charged");
        assert_eq!(m.metrics().schedule_hits, 0);
        // The compiled schedule is still intact and replayable.
        m.pairwise_keyed(
            ScheduleKey::Cross,
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s = v,
        );
        assert_eq!(m.metrics().schedule_hits, 1);
    }

    #[test]
    fn newly_speaking_node_rejected_on_replay() {
        let mut m = machine(2);
        // Compile: only {0, 1} exchange.
        m.pairwise_keyed(
            ScheduleKey::Custom(1),
            |u, _| (u < 2).then_some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s = v,
        );
        // Replay with node 2 and 3 joining in: deviation at node 2.
        let err = m
            .try_pairwise_keyed(
                ScheduleKey::Custom(1),
                |u, _| Some(u ^ 1),
                |_, &s| s,
                |s, _, v| *s = v,
            )
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ScheduleDeviation {
                key: ScheduleKey::Custom(1),
                node: 2
            }
        );
    }

    #[test]
    fn replay_disabled_machine_never_caches() {
        let mut m = machine(2);
        m.set_schedule_replay(false);
        assert!(!m.schedule_replay());
        for _ in 0..3 {
            m.pairwise_keyed(
                ScheduleKey::Cross,
                |u, _| Some(u ^ 1),
                |_, &s| s,
                |s, _, v| *s += v,
            );
        }
        assert_eq!(m.compiled_schedules(), 0);
        assert_eq!(m.metrics().schedule_hits, 0);
        assert_eq!(m.metrics().schedule_misses, 0);
        assert_eq!(m.metrics().comm_steps, 3);
    }

    #[test]
    fn clear_schedules_forces_recompile() {
        let mut m = machine(2);
        m.pairwise_keyed(
            ScheduleKey::Cross,
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s += v,
        );
        assert_eq!(m.compiled_schedules(), 1);
        m.clear_schedules();
        assert_eq!(m.compiled_schedules(), 0);
        m.pairwise_keyed(
            ScheduleKey::Cross,
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s += v,
        );
        assert_eq!(m.metrics().schedule_misses, 2);
    }

    #[test]
    fn schedule_bank_round_trip_skips_recompilation() {
        let mut bank = ScheduleBank::new();
        assert!(bank.is_empty());
        // First "request": compiles two keys, donates them.
        let mut a = machine(2);
        for key in [ScheduleKey::Cross, ScheduleKey::Custom(7)] {
            for _ in 0..2 {
                a.pairwise_keyed(key, |u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
            }
        }
        assert_eq!(a.metrics().schedule_misses, 2);
        a.donate_schedules(&mut bank);
        assert_eq!(bank.len(), 2);
        assert_eq!(a.compiled_schedules(), 0, "donation drains the machine");
        // Second "request", fresh machine (even a different state type
        // would do — schedules are destination-only): adopts and replays
        // from the first cycle, zero misses.
        let mut b = machine(2);
        b.adopt_schedules(&mut bank);
        assert!(bank.is_empty(), "adoption drains the bank");
        for key in [ScheduleKey::Cross, ScheduleKey::Custom(7)] {
            b.pairwise_keyed(key, |u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
        }
        assert_eq!(b.metrics().schedule_misses, 0, "warm bank: no recompiles");
        assert_eq!(b.metrics().schedule_hits, 2);
        // And a third key extends the set before donating back.
        b.pairwise_keyed(
            ScheduleKey::Dim(0),
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s += v,
        );
        b.donate_schedules(&mut bank);
        assert_eq!(bank.len(), 3);
    }

    #[test]
    #[should_panic(expected = "warmed on")]
    fn schedule_bank_rejects_mismatched_node_count() {
        let mut bank = ScheduleBank::new();
        let mut a = machine(2);
        a.pairwise_keyed(
            ScheduleKey::Cross,
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s += v,
        );
        a.donate_schedules(&mut bank);
        let mut b = machine(3); // 8 nodes, bank warmed on 4
        b.adopt_schedules(&mut bank);
    }

    #[test]
    #[should_panic(expected = "fault epoch is 0")]
    fn schedule_bank_refuses_faulted_adopter() {
        let mut bank = ScheduleBank::new();
        let mut a = machine(2);
        a.pairwise_keyed(
            ScheduleKey::Cross,
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s += v,
        );
        a.donate_schedules(&mut bank);
        let mut b = machine(2);
        b.inject_fault(FaultKind::NodeCrash { node: 3 });
        b.adopt_schedules(&mut bank);
    }

    #[test]
    fn keyed_try_probe_errors_identically_on_compile_cycle() {
        // The compile cycle runs full validation, so an illegal keyed
        // plan reports exactly the unkeyed error.
        let mut keyed = machine(2);
        let mut plain = machine(2);
        let plan = |u: usize, &s: &u64| if u == 0 { Some((3, s)) } else { None };
        let a = keyed
            .try_exchange_keyed(ScheduleKey::Custom(9), plan, |_, _, _: u64| {})
            .unwrap_err();
        let b = plain.try_exchange(plan, |_, _, _: u64| {}).unwrap_err();
        assert_eq!(a, b);
        // The failed cycle compiled nothing.
        assert_eq!(keyed.compiled_schedules(), 0);
    }

    #[test]
    fn compute_counts_steps_and_ops() {
        let mut m = machine(2);
        m.compute(1, |_, s| *s *= 2);
        assert_eq!(m.states(), &[0, 2, 4, 6]);
        assert_eq!(m.metrics().comp_steps, 1);
        assert_eq!(m.metrics().element_ops, 4);
        m.compute_counted(1, 2, |u, s| {
            if u < 2 {
                *s += 1
            }
        });
        assert_eq!(m.metrics().comp_steps, 2);
        assert_eq!(m.metrics().element_ops, 6);
    }

    /// Pins the documented `compute` semantics: `steps` is the charged
    /// duration of ONE invocation of `f` per node, never a repetition
    /// count (the seed version's docs were ambiguous on this).
    #[test]
    fn compute_invokes_f_once_regardless_of_steps() {
        let mut m = machine(2);
        m.compute(5, |_, s| *s += 1);
        // One invocation per node…
        assert_eq!(m.states(), &[1, 2, 3, 4]);
        // …but five cycles (and 5 × 4 element ops) charged.
        assert_eq!(m.metrics().comp_steps, 5);
        assert_eq!(m.metrics().element_ops, 20);
        m.compute_counted(3, 7, |_, s| *s += 10);
        assert_eq!(m.states(), &[11, 12, 13, 14]);
        assert_eq!(m.metrics().comp_steps, 8);
        assert_eq!(m.metrics().element_ops, 27);
    }

    #[test]
    fn setup_is_free() {
        let mut m = machine(2);
        m.setup(|u, s| *s = u as u64 * 10);
        assert_eq!(m.metrics().comp_steps, 0);
        assert_eq!(m.states(), &[0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "one state per node")]
    fn wrong_state_count_rejected() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(2)));
        let _ = Machine::new(topo, vec![0u8; 3]);
    }

    #[test]
    fn exec_mode_is_configurable_and_defaults_to_parallel() {
        let mut m = machine(2);
        assert_eq!(m.exec(), ExecMode::parallel());
        m.set_exec(ExecMode::Sequential);
        assert_eq!(m.exec(), ExecMode::Sequential);
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(1)));
        let m = Machine::with_exec(topo, vec![0u8; 2], ExecMode::Parallel { threshold: 1 });
        assert_eq!(m.exec(), ExecMode::Parallel { threshold: 1 });
    }

    /// A machine big enough to clear PAR_THRESHOLD must produce identical
    /// states, metrics, and traces on both backends (Q_13 = 8192 nodes).
    #[test]
    fn parallel_backend_matches_sequential_on_large_machine() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(13)));
        let n = topo.num_nodes();
        assert!(n >= PAR_THRESHOLD);
        let run = |exec: ExecMode| {
            let mut m = Machine::with_exec(topo, (0..n as u64).collect(), exec);
            m.enable_trace();
            for i in 0..13 {
                m.pairwise(|u, _| Some(u ^ (1 << i)), |_, &s| s, |s, _, v| *s += v);
                m.compute(1, |u, s| *s = s.wrapping_add(u as u64));
            }
            let trace = m.phased_trace().to_vec();
            let (states, metrics) = m.into_parts();
            (states, metrics, trace)
        };
        let _guard = crate::parallel::test_override_guard();
        let seq = run(ExecMode::Sequential);
        // Pin 4 workers so the threaded path is exercised even on a
        // single-core host (the backend is deterministic at any count).
        crate::parallel::set_worker_threads(4);
        let par = run(ExecMode::parallel());
        crate::parallel::set_worker_threads(0);
        assert_eq!(seq.0, par.0, "states");
        assert_eq!(seq.1, par.1, "metrics");
        assert_eq!(seq.2, par.2, "traces");
    }

    /// Keyed replay on the threaded backend must match the sequential
    /// validate-every-cycle run bit-for-bit (Q_13 clears PAR_THRESHOLD).
    #[test]
    fn keyed_replay_matches_across_backends_on_large_machine() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(13)));
        let n = topo.num_nodes();
        let run = |exec: ExecMode, replay: bool| {
            let mut m = Machine::with_exec(topo, (0..n as u64).collect(), exec);
            m.set_schedule_replay(replay);
            m.enable_trace();
            for sweep in 0..3 {
                for i in 0..13u32 {
                    m.pairwise_keyed(
                        ScheduleKey::Dim(i),
                        move |u, _| Some(u ^ (1usize << i)),
                        |_, &s| s,
                        move |s, _, v| *s = s.wrapping_mul(31).wrapping_add(v + sweep),
                    );
                }
            }
            let trace = m.phased_trace().to_vec();
            let (states, mut metrics) = m.into_parts();
            // The observability counters are the one intended difference
            // between the replay-on and replay-off legs.
            metrics.schedule_hits = 0;
            metrics.schedule_misses = 0;
            (states, metrics, trace)
        };
        let _guard = crate::parallel::test_override_guard();
        let baseline = run(ExecMode::Sequential, false);
        let seq_replay = run(ExecMode::Sequential, true);
        assert_eq!(baseline, seq_replay, "sequential replay");
        crate::parallel::set_worker_threads(4);
        let par_replay = run(ExecMode::parallel(), true);
        let par_baseline = run(ExecMode::parallel(), false);
        crate::parallel::set_worker_threads(0);
        assert_eq!(baseline, par_replay, "threaded replay");
        assert_eq!(baseline, par_baseline, "threaded validate-every-cycle");
    }

    /// Model violations must be reported identically (same variant, same
    /// nodes) by both backends, with the machine left untouched.
    #[test]
    fn parallel_backend_error_semantics_bit_identical() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(13)));
        let n = topo.num_nodes();
        let probe = |exec: ExecMode| {
            let mut m = Machine::with_exec(topo, vec![0u64; n], exec);
            // Every node sends to node u|1 across dim 0: odd nodes self-send
            // (caught first at node 1), and pairs collide — the backends
            // must agree on which violation is surfaced.
            let err = m
                .try_exchange(|u, _| Some((u | 1, u as u64)), |_, _, _| {})
                .unwrap_err();
            assert_eq!(m.metrics().comm_steps, 0);
            err
        };
        let _guard = crate::parallel::test_override_guard();
        let seq = probe(ExecMode::Sequential);
        crate::parallel::set_worker_threads(4);
        let par = probe(ExecMode::parallel());
        crate::parallel::set_worker_threads(0);
        assert_eq!(seq, par);
    }

    #[test]
    fn crashed_node_rejects_sends_in_both_directions() {
        let mut m = machine(2);
        m.inject_fault(FaultKind::NodeCrash { node: 1 });
        assert!(m.is_failed(1));
        assert_eq!(m.failed_nodes(), vec![1]);
        assert_eq!(m.fault_epoch(), 1);
        // 1 as sender: NodeFailed{1} (node 0 stays silent).
        let err = m
            .try_exchange(|u, &s| (u == 1).then_some((0, s)), |_, _, _: u64| {})
            .unwrap_err();
        assert_eq!(err, SimError::NodeFailed { node: 1 });
        // 1 as receiver: also NodeFailed{1}.
        let err = m
            .try_exchange(|u, &s| (u == 0).then_some((1, s)), |_, _, _: u64| {})
            .unwrap_err();
        assert_eq!(err, SimError::NodeFailed { node: 1 });
        // Machine untouched, no cycle charged.
        assert_eq!(m.metrics().comm_steps, 0);
        // Traffic avoiding node 1 still flows.
        let n = m.try_exchange(|u, &s| (u == 2).then_some((3, s)), |s, _, v: u64| *s += v);
        assert_eq!(n, Ok(1));
    }

    #[test]
    fn downed_link_refuses_traffic_but_endpoints_live() {
        let mut m = machine(2);
        m.inject_fault(FaultKind::LinkDown { a: 0, b: 1 });
        assert_eq!(m.links_down(), &[(0, 1)]);
        let err = m
            .try_exchange(|u, &s| (u == 1).then_some((0, s)), |_, _, _: u64| {})
            .unwrap_err();
        assert_eq!(err, SimError::LinkDown { src: 1, dst: 0 });
        // Both endpoints still talk over their other links.
        let n = m.try_pairwise(|u, _| Some(u ^ 2), |_, &s| s, |s, _, v| *s += v);
        assert_eq!(n, Ok(4));
    }

    #[test]
    fn crashed_node_state_frozen_through_compute() {
        let mut m = machine(2);
        m.inject_fault(FaultKind::NodeCrash { node: 2 });
        m.compute(1, |_, s| *s += 100);
        assert_eq!(m.states(), &[100, 101, 2, 103], "node 2 frozen");
        // Setup is out-of-band and ignores the crash.
        m.setup(|_, s| *s = 0);
        assert_eq!(m.states(), &[0, 0, 0, 0]);
    }

    #[test]
    fn scripted_message_drop_loses_one_cycles_deliveries() {
        let mut m = machine(2);
        m.set_fault_plan(FaultPlan::new().message_drop(1, 0));
        // Cycle 0: no drop armed yet.
        let n = m.pairwise(|u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
        assert_eq!(n, 4);
        // Cycle 1: messages to node 0 vanish; everyone else delivers.
        let n = m.pairwise(|u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
        assert_eq!(n, 3);
        assert_eq!(m.metrics().dropped_messages, 1);
        // Cycle 2: transient — back to full delivery.
        let n = m.pairwise(|u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
        assert_eq!(n, 4);
        assert_eq!(m.metrics().messages, 11);
        assert_eq!(m.metrics().comm_steps, 3);
        assert_eq!(m.fault_epoch(), 0, "drops never bump the epoch");
    }

    /// The tentpole's latent-bug fix: a schedule compiled pre-fault must
    /// not be replayed post-fault. The crash bumps the epoch, the next
    /// keyed cycle takes the recompile path, and full validation rejects
    /// the now-illegal pattern with `NodeFailed` (not a stale replay, and
    /// not a `ScheduleDeviation`).
    #[test]
    fn fault_epoch_invalidates_compiled_schedule() {
        let mut m = machine(2);
        m.pairwise_keyed(
            ScheduleKey::Dim(0),
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s += v,
        );
        assert_eq!(m.metrics().schedule_misses, 1);
        assert_eq!(m.compiled_schedules(), 1);
        m.inject_fault(FaultKind::NodeCrash { node: 3 });
        assert_eq!(m.compiled_schedules(), 0, "epoch bump evicts the entry");
        let err = m
            .try_pairwise_keyed(
                ScheduleKey::Dim(0),
                |u, _| Some(u ^ 1),
                |_, &s| s,
                |s, _, v| *s += v,
            )
            .unwrap_err();
        // Lowest offending sender is 2, whose receiver 3 is the corpse.
        assert_eq!(err, SimError::NodeFailed { node: 3 });
        assert_eq!(m.metrics().schedule_hits, 0, "never replayed post-fault");
        // A rerouted pattern that avoids node 3 recompiles under the new
        // epoch and replays thereafter.
        for _ in 0..2 {
            m.pairwise_keyed(
                ScheduleKey::Dim(0),
                |u, _| (u < 2).then_some(u ^ 1),
                |_, &s| s,
                |s, _, v| *s += v,
            );
        }
        assert_eq!(m.metrics().schedule_misses, 2);
        assert_eq!(m.metrics().schedule_hits, 1);
    }

    /// Scripted faults land at their cycle boundary even when every cycle
    /// is a keyed replay — the boundary check runs before the cache is
    /// consulted.
    #[test]
    fn scripted_crash_vetoes_replay_at_its_boundary() {
        let mut m = machine(2);
        m.set_fault_plan(FaultPlan::new().node_crash(2, 0));
        let run = |m: &mut Machine<'static, Hypercube, u64>| {
            m.try_pairwise_keyed(
                ScheduleKey::Cross,
                |u, _| Some(u ^ 1),
                |_, &s| s,
                |s, _, v| *s += v,
            )
        };
        assert!(run(&mut m).is_ok(), "cycle 0 compiles");
        assert!(run(&mut m).is_ok(), "cycle 1 replays");
        assert_eq!(m.metrics().schedule_hits, 1);
        let err = run(&mut m).unwrap_err();
        assert_eq!(err, SimError::NodeFailed { node: 0 });
        assert_eq!(m.fault_epoch(), 1);
        assert_eq!(
            m.metrics().schedule_hits,
            1,
            "the pre-fault schedule must not serve the post-fault cycle"
        );
    }

    /// A pure receive-conflict (no local violations): the parallel
    /// reduction must finger the second-lowest sender and name the lowest
    /// as `first_src`, exactly like the sequential walk.
    #[test]
    fn parallel_conflict_attribution_matches_sequential() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(13)));
        let n = topo.num_nodes();
        let probe = |exec: ExecMode| {
            let mut m = Machine::with_exec(topo, vec![0u64; n], exec);
            // Nodes 8 and 512 both target node 0 (dims 3 and 9); node
            // 2048 targets it too (dim 11). Lowest sender 8 claims,
            // second-lowest 512 is reported.
            m.try_exchange(
                |u, _| matches!(u, 8 | 512 | 2048).then_some((0usize, u as u64)),
                |_, _, _| {},
            )
            .unwrap_err()
        };
        let _guard = crate::parallel::test_override_guard();
        let seq = probe(ExecMode::Sequential);
        assert_eq!(
            seq,
            SimError::RecvConflict {
                node: 0,
                first_src: 8,
                second_src: 512
            }
        );
        for workers in [2, 3, 4, 7] {
            crate::parallel::set_worker_threads(workers);
            assert_eq!(probe(ExecMode::parallel()), seq, "at {workers} workers");
        }
        crate::parallel::set_worker_threads(0);
    }

    #[test]
    fn phased_trace_attributes_cycles_to_their_phases() {
        let mut m = machine(2);
        m.enable_trace();
        m.pairwise(|u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
        m.begin_phase("a");
        m.pairwise(|u, _| Some(u ^ 2), |_, &s| s, |s, _, v| *s += v);
        m.begin_phase("b");
        m.pairwise(|u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
        let phases: Vec<Option<u32>> = m.phased_trace().iter().map(|(p, _)| *p).collect();
        assert_eq!(phases, vec![None, Some(0), Some(1)]);
        assert_eq!(
            m.phased_trace()[0].1,
            vec![(0, 1), (1, 0), (2, 3), (3, 2)],
            "message pairs are recorded in sender order"
        );
    }

    #[test]
    fn recorder_streams_phase_and_cycle_events() {
        let _guard = crate::obs::test_recorder_guard();
        let mut m = machine(2);
        let sink = crate::obs::shared(crate::obs::MemorySink::new());
        m.record_into(sink.clone());
        assert!(m.is_recording());
        m.begin_phase("sweep");
        for _ in 0..2 {
            m.pairwise_keyed(
                ScheduleKey::Dim(0),
                |u, _| Some(u ^ 1),
                |_, &s| s,
                |s, _, v| *s += v,
            );
        }
        m.compute(2, |_, s| *s += 1);
        // A failed cycle emits nothing (it charges no step either).
        let before = sink.lock().unwrap().len();
        let _ = m
            .try_exchange(|u, &s| (u == 0).then_some((3, s)), |_, _, _: u64| {})
            .unwrap_err();
        assert_eq!(
            sink.lock().unwrap().len(),
            before,
            "failed cycles emit no event"
        );
        let report = m.link_report().expect("recording is on");
        assert_eq!(report.cross_links, 0, "hypercubes have no cross edges");
        assert_eq!(report.cube_messages, 8);
        assert_eq!(m.metrics().link_util.cube_messages, 8);
        assert_eq!(m.metrics().link_util.cross_messages, 0);
        assert!(m.stop_recording().is_some());
        assert!(!m.is_recording());
        let events = sink.lock().unwrap().events();
        assert_eq!(events.len(), 4);
        match &events[0] {
            crate::obs::Event::Phase(p) => {
                assert_eq!(p.index, 0);
                assert_eq!(p.label, "sweep");
            }
            other => panic!("expected a phase event, got {other:?}"),
        }
        let cycle = |e: &crate::obs::Event| match e {
            crate::obs::Event::Cycle(c) => c.clone(),
            other => panic!("expected a cycle event, got {other:?}"),
        };
        let c1 = cycle(&events[1]);
        assert_eq!(c1.kind, CycleKind::Comm);
        assert_eq!(c1.cycle, 0);
        assert_eq!(c1.key, Some(ScheduleKey::Dim(0)));
        assert_eq!(c1.cache, CacheStatus::Miss);
        assert_eq!(c1.phase, Some(0));
        assert_eq!(c1.messages, 4);
        assert_eq!(c1.words, 4);
        let c2 = cycle(&events[2]);
        assert_eq!(c2.cache, CacheStatus::Hit, "second keyed cycle replays");
        assert_eq!(c2.cycle, 1);
        assert_eq!(c2.messages, 4);
        let c3 = cycle(&events[3]);
        assert_eq!(c3.kind, CycleKind::Comp);
        assert_eq!(c3.cycle, 0);
        assert_eq!(c3.steps, 2);
        assert_eq!(c3.ops, 8);
        assert!(events
            .iter()
            .map(|e| match e {
                crate::obs::Event::Phase(p) => p.seq,
                crate::obs::Event::Cycle(c) => c.seq,
            })
            .eq(0..4));
    }

    /// One K-lane batched run must be bit-identical, lane by lane, to K
    /// independent single-lane runs over the same keyed schedule — the
    /// core lane-batching contract (compile cycle AND replay cycles).
    #[test]
    fn lane_batched_pairwise_matches_k_single_lane_runs() {
        const K: usize = 4;
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(3)));
        let n = topo.num_nodes();
        let singles: Vec<Vec<u64>> = (0..K)
            .map(|k| {
                let mut m = Machine::new(topo, (0..n as u64).map(|u| u + 100 * k as u64).collect());
                for _ in 0..2 {
                    for i in 0..3 {
                        m.pairwise_keyed(
                            ScheduleKey::Dim(i),
                            move |u, _| Some(u ^ (1usize << i)),
                            |_, &s| s,
                            |s, _, v| *s = s.wrapping_mul(31).wrapping_add(v),
                        );
                    }
                }
                m.into_parts().0
            })
            .collect();
        let init: Vec<Vec<u64>> = (0..n as u64)
            .map(|u| (0..K as u64).map(|k| u + 100 * k).collect())
            .collect();
        let mut m = Machine::new(topo, init);
        for _ in 0..2 {
            for i in 0..3 {
                m.pairwise_lanes_keyed(
                    ScheduleKey::Dim(i),
                    K,
                    &0u64,
                    move |u, _| Some(u ^ (1usize << i)),
                    |_, s, w| w.copy_from_slice(s),
                    |s, _, w| {
                        for (x, v) in s.iter_mut().zip(w.iter()) {
                            *x = x.wrapping_mul(31).wrapping_add(*v);
                        }
                    },
                );
            }
        }
        for (u, state) in m.states().iter().enumerate() {
            for (k, single) in singles.iter().enumerate() {
                assert_eq!(state[k], single[u], "node {u} lane {k}");
            }
        }
        // One schedule compile + replay per key, K words per message.
        assert_eq!(m.metrics().schedule_misses, 3);
        assert_eq!(m.metrics().schedule_hits, 3);
        assert_eq!(m.metrics().messages, 6 * n as u64);
        assert_eq!(m.metrics().message_words, 6 * n as u64 * K as u64);
    }

    /// Lane cycles share the schedule cache with their single-lane
    /// counterparts: the compiled pattern encodes destinations only.
    #[test]
    fn lane_replay_shares_cache_with_single_lane_cycles() {
        let mut m = machine(2);
        m.pairwise_keyed(
            ScheduleKey::Dim(0),
            |u, _| Some(u ^ 1),
            |_, &s| s,
            |s, _, v| *s += v,
        );
        assert_eq!(m.metrics().schedule_misses, 1);
        m.pairwise_lanes_keyed(
            ScheduleKey::Dim(0),
            2,
            &0u64,
            |u, _| Some(u ^ 1),
            |_, &s, w| w.fill(s),
            |s, _, w| *s += w[0] + w[1],
        );
        assert_eq!(m.metrics().schedule_hits, 1);
        assert_eq!(m.metrics().schedule_misses, 1);
    }

    #[test]
    fn lane_replay_deviation_rejected_and_machine_untouched() {
        let mut m = machine(2);
        m.exchange_lanes_keyed(
            ScheduleKey::Custom(3),
            2,
            &0u64,
            |u, _| (u == 0).then_some(1),
            |_, &s, w| w.fill(s),
            |s, _, w| *s += w[0] + w[1],
        );
        let before = m.states().to_vec();
        let comm = m.metrics().comm_steps;
        let err = m
            .try_exchange_lanes_keyed(
                ScheduleKey::Custom(3),
                2,
                &0u64,
                |u, _| (u == 1).then_some(0),
                |_, &s, w| w.fill(s),
                |s, _, w| *s += w[0] + w[1],
            )
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ScheduleDeviation {
                key: ScheduleKey::Custom(3),
                node: 0
            }
        );
        assert_eq!(m.states(), &before[..], "deviating cycle must not apply");
        assert_eq!(m.metrics().comm_steps, comm, "no step charged");
    }

    /// A scripted drop under lanes loses ONE message (all K lanes of
    /// it): counters charge per message and K words per message.
    #[test]
    fn lane_message_drop_counts_one_message_k_words() {
        let mut m = machine(2);
        m.set_fault_plan(FaultPlan::new().message_drop(0, 0));
        let delivered = m
            .try_pairwise_lanes(
                4,
                &0u64,
                |u, _| Some(u ^ 1),
                |_, &s, w| w.fill(s),
                |s, _, w| *s += w.iter().sum::<u64>(),
            )
            .unwrap();
        assert_eq!(delivered, 3, "the drop loses node 0's inbound message");
        assert_eq!(m.metrics().dropped_messages, 1);
        assert_eq!(m.metrics().messages, 3);
        assert_eq!(m.metrics().message_words, 12);
    }

    /// Recorded lane cycles charge `lanes` words per delivered message
    /// into both metrics and the per-link counters, stamp the lane count
    /// on their [`CycleEvent`], and absorb across runs without double- or
    /// under-counting.
    #[test]
    fn recorded_lane_cycles_scale_link_accounting_by_lane_count() {
        let _guard = crate::obs::test_recorder_guard();
        const K: usize = 4;
        let run_once = || {
            let mut m = machine(2);
            let sink = crate::obs::shared(crate::obs::MemorySink::new());
            m.record_into(sink.clone());
            // One compile + one replay cycle under the same key.
            for _ in 0..2 {
                m.pairwise_lanes_keyed(
                    ScheduleKey::Dim(0),
                    K,
                    &0u64,
                    |u, _| Some(u ^ 1),
                    |_, &s, w| w.fill(s),
                    |s, _, w| *s += w[0],
                );
            }
            let events = sink.lock().unwrap().events();
            for e in &events {
                if let crate::obs::Event::Cycle(c) = e {
                    assert_eq!(c.lanes, K as u32, "lane count stamped on the event");
                    assert_eq!(c.words, c.messages * K as u64);
                }
            }
            m.into_parts().1
        };
        let a = run_once();
        assert_eq!(a.messages, 8, "4 nodes x 2 cycles");
        assert_eq!(a.message_words, 8 * K as u64);
        assert_eq!(a.link_util.cube_messages, 8);
        assert_eq!(a.link_util.cube_words, 8 * K as u64);
        // Absorbing a second identical run doubles everything exactly.
        let mut total = a.clone();
        total.absorb(&run_once());
        assert_eq!(total.messages, 16);
        assert_eq!(total.message_words, 16 * K as u64);
        assert_eq!(total.link_util.cube_words, 16 * K as u64);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let mut m = machine(2);
        let _ = m.try_exchange_lanes(
            0,
            &0u64,
            |_, _| None::<usize>,
            |_, _, _: &mut [u64]| {},
            |_, _, _| {},
        );
    }

    /// Lane cycles are deterministic across backends, worker counts, and
    /// replay settings (Q_13 clears PAR_THRESHOLD so the threaded legs
    /// really dispatch on the pool).
    #[test]
    fn lane_cycles_match_across_backends_and_replay() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(13)));
        let n = topo.num_nodes();
        const K: usize = 3;
        let run = |exec: ExecMode, replay: bool| {
            let mut m = Machine::with_exec(
                topo,
                (0..n as u64)
                    .map(|u| vec![u, u.wrapping_mul(7), u ^ 0x55])
                    .collect(),
                exec,
            );
            m.set_schedule_replay(replay);
            for _ in 0..3 {
                for i in 0..4u32 {
                    m.pairwise_lanes_keyed(
                        ScheduleKey::Dim(i),
                        K,
                        &0u64,
                        move |u, _| Some(u ^ (1usize << i)),
                        |_, s, w| w.copy_from_slice(s),
                        |s, _, w| {
                            for (x, v) in s.iter_mut().zip(w.iter()) {
                                *x = x.wrapping_mul(5).wrapping_add(*v);
                            }
                        },
                    );
                }
            }
            let (states, mut metrics) = m.into_parts();
            metrics.schedule_hits = 0;
            metrics.schedule_misses = 0;
            (states, metrics)
        };
        let _guard = crate::parallel::test_override_guard();
        let baseline = run(ExecMode::Sequential, false);
        assert_eq!(
            baseline,
            run(ExecMode::Sequential, true),
            "sequential replay"
        );
        for workers in [2usize, 4] {
            crate::parallel::set_worker_threads(workers);
            assert_eq!(
                baseline,
                run(ExecMode::parallel(), true),
                "threaded replay at {workers} workers"
            );
            assert_eq!(
                baseline,
                run(ExecMode::parallel(), false),
                "threaded validate-every-cycle at {workers} workers"
            );
        }
        crate::parallel::set_worker_threads(0);
    }

    #[test]
    fn ambient_with_recording_installs_recorder_on_new_machines() {
        let _guard = crate::obs::test_recorder_guard();
        let sink = crate::obs::shared(crate::obs::MemorySink::new());
        let shared: crate::obs::SharedSink = sink.clone();
        crate::obs::with_recording(shared, || {
            let mut m = machine(2);
            assert!(m.is_recording());
            m.pairwise(|u, _| Some(u ^ 1), |_, &s| s, |s, _, v| *s += v);
        });
        let m = machine(2);
        assert!(!m.is_recording(), "scope ended, new machines are bare");
        assert_eq!(sink.lock().unwrap().len(), 1);
    }

    /// Node ids are packed into `u32` everywhere (compiled schedules,
    /// the split inbox's source array, claim tables); a topology past
    /// the 2³¹ − 1 ceiling must be rejected at construction, before any
    /// per-node structure is sized. States are zero-sized so the `Vec`
    /// never actually allocates 2³¹ elements.
    #[test]
    #[should_panic(expected = "packs node ids into u32")]
    fn construction_rejects_topologies_past_the_u32_ceiling() {
        struct Huge;
        impl Topology for Huge {
            fn num_nodes(&self) -> usize {
                1 << 31
            }
            fn neighbors_into(&self, _u: NodeId, out: &mut Vec<NodeId>) {
                out.clear();
            }
            fn name(&self) -> String {
                "Huge(2^31)".into()
            }
        }
        static HUGE: Huge = Huge;
        let _ = Machine::new(&HUGE, vec![(); 1 << 31]);
    }
}
