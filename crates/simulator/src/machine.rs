//! The synchronous multicomputer: one state per node, stepped through
//! communication and computation cycles under 1-port validation.

use crate::error::SimError;
use crate::metrics::Metrics;
use crate::parallel::{par_apply_forced, par_zip_apply, par_zip_apply_mut, ExecMode};
use dc_topology::{NodeId, Topology};
use std::any::Any;
use std::fmt;

/// A reusable, type-erased `Vec<Option<(NodeId, M)>>`: one allocation
/// that survives across cycles for as long as the message type `M` stays
/// the same (the steady state of every cycle loop). A cycle with a new
/// message type swaps in a fresh vector; the old one is dropped.
struct TypedSlot(Option<Box<dyn Any + Send>>);

impl TypedSlot {
    const fn new() -> Self {
        TypedSlot(None)
    }

    /// The buffer for message type `M`, *cleared* but with its capacity
    /// intact. Allocates only on first use or when `M` changed since the
    /// previous cycle.
    fn cleared<M: Send + 'static>(&mut self) -> &mut Vec<Option<(NodeId, M)>> {
        let fresh = match &self.0 {
            Some(b) => !b.is::<Vec<Option<(NodeId, M)>>>(),
            None => true,
        };
        if fresh {
            self.0 = Some(Box::new(Vec::<Option<(NodeId, M)>>::new()));
        }
        let v: &mut Vec<Option<(NodeId, M)>> = self
            .0
            .as_mut()
            .expect("slot populated above")
            .downcast_mut()
            .expect("slot typed above");
        v.clear();
        v
    }
}

/// Per-cycle scratch buffers owned by the machine so that a steady-state
/// cycle performs **zero heap allocations**: the plan slots, the
/// receive-conflict table, the deliver inbox, and the pairwise partner
/// table are all reused across cycles (pinned by the counting-allocator
/// test in `tests/zero_alloc.rs`). Purely transient — contents never
/// survive past the cycle that filled them, so cloning a machine starts
/// the clone with empty scratch and equality/trace semantics are
/// unaffected.
struct Scratch {
    /// `recv_from[dst]` = sending node during validation (`usize::MAX` =
    /// no sender yet).
    recv_from: Vec<usize>,
    /// Pairwise partner choices, reused by `try_pairwise_sized`.
    partners: Vec<Option<NodeId>>,
    /// Plan-phase output slots, keyed by message type.
    plans: TypedSlot,
    /// Deliver-phase inbox (threaded path only), keyed by message type.
    inbox: TypedSlot,
}

impl Scratch {
    const fn new() -> Self {
        Scratch {
            recv_from: Vec::new(),
            partners: Vec::new(),
            plans: TypedSlot::new(),
            inbox: TypedSlot::new(),
        }
    }
}

impl fmt::Debug for Scratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Scratch { .. }")
    }
}

impl Clone for Scratch {
    /// Scratch is transient per-cycle storage; a cloned machine starts
    /// with fresh (empty) buffers.
    fn clone(&self) -> Self {
        Scratch::new()
    }
}

/// A synchronous message-passing machine over a [`Topology`].
///
/// Algorithms drive the machine through three primitives:
///
/// * [`Machine::exchange`] — one communication cycle: every node may send
///   one message to one neighbour; the machine validates adjacency and the
///   1-port constraint (≤1 send, ≤1 receive per node per cycle) before
///   delivering.
/// * [`Machine::pairwise`] — the common special case of a symmetric
///   exchange along a perfect (partial) matching, e.g. one dimension of an
///   ascend/descend algorithm.
/// * [`Machine::compute`] — one computation phase of local work per node,
///   charged as one or more computation cycles.
///
/// The node-local closures receive only the node's own id and state — the
/// same information a real SPMD process would have — which keeps simulated
/// algorithms honest about what must travel in messages.
///
/// # Execution backend
///
/// Each cycle's per-node work runs under an [`ExecMode`]. The default,
/// [`ExecMode::parallel`], spreads the work of machines with at least
/// [`crate::parallel::PAR_THRESHOLD`] nodes over the host cores; smaller
/// machines (and any machine under [`ExecMode::Sequential`]) use plain
/// loops. A communication cycle splits into three phases:
///
/// 1. **plan** — `plan(u, &state)` for every node, read-only, parallel;
/// 2. **validate** — the 1-port matching check, always sequential in node
///    order so [`SimError`] reporting and trace recording are bit-identical
///    across backends;
/// 3. **deliver** — receiver-driven: since a validated cycle delivers at
///    most one message per node, messages are scattered into a per-node
///    inbox and each worker mutates only its own node's state.
///
/// Simulated metrics never depend on the backend; the parallel backend is
/// observationally identical and only changes wall-clock time.
///
/// ```
/// use dc_simulator::Machine;
/// use dc_topology::Hypercube;
///
/// // All-reduce (sum) on Q_3 by dimension sweeps.
/// let q = Hypercube::new(3);
/// let mut m = Machine::new(&q, (0..8u64).collect::<Vec<_>>());
/// for i in 0..3 {
///     m.pairwise(
///         |u, _| Some(u ^ (1 << i)),
///         |_, &s| s,
///         |s, _, other| *s += other,
///     );
///     m.compute(1, |_, _| {});
/// }
/// assert!(m.states().iter().all(|&s| s == 28));
/// assert_eq!(m.metrics().comm_steps, 3);
/// ```
#[derive(Debug, Clone)]
pub struct Machine<'t, T: Topology + ?Sized, S> {
    topo: &'t T,
    states: Vec<S>,
    metrics: Metrics,
    trace: Option<Vec<Vec<(NodeId, NodeId)>>>,
    exec: ExecMode,
    scratch: Scratch,
}

impl<'t, T: Topology + ?Sized, S> Machine<'t, T, S> {
    /// Creates a machine with one initial state per node, under the
    /// default [`ExecMode`] (parallel above the size threshold).
    ///
    /// Panics unless `states.len() == topo.num_nodes()`.
    pub fn new(topo: &'t T, states: Vec<S>) -> Self {
        assert_eq!(
            states.len(),
            topo.num_nodes(),
            "need exactly one state per node of {}",
            topo.name()
        );
        Machine {
            topo,
            states,
            metrics: Metrics::new(),
            trace: None,
            exec: ExecMode::default(),
            scratch: Scratch::new(),
        }
    }

    /// [`Machine::new`] with an explicit execution backend.
    pub fn with_exec(topo: &'t T, states: Vec<S>, exec: ExecMode) -> Self {
        let mut m = Machine::new(topo, states);
        m.exec = exec;
        m
    }

    /// The current execution backend.
    pub fn exec(&self) -> ExecMode {
        self.exec
    }

    /// Switches the execution backend. Takes effect from the next cycle;
    /// results and metrics are identical under every mode (the backends
    /// are observationally equivalent — see the determinism tests).
    pub fn set_exec(&mut self, exec: ExecMode) {
        self.exec = exec;
    }

    /// Whether this machine's cycles currently run on the threaded
    /// backend (mode is parallel *and* the machine is large enough).
    fn threaded(&self) -> bool {
        self.exec.is_parallel_for(self.states.len())
    }

    /// Starts recording a space-time trace: each subsequent communication
    /// cycle appends the list of `(src, dst)` messages it delivered.
    /// Costly for big machines; meant for the worked-example diagrams.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace, one entry per communication cycle (empty unless
    /// [`Machine::enable_trace`] was called before the cycles ran).
    pub fn trace(&self) -> &[Vec<(NodeId, NodeId)>] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t T {
        self.topo
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.states.len()
    }

    /// Immutable view of all node states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable view of all node states (for out-of-band setup only; does
    /// not count as simulated work).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Consumes the machine, returning final states and metrics.
    pub fn into_parts(self) -> (Vec<S>, Metrics) {
        (self.states, self.metrics)
    }

    /// Accumulated step counts.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Opens a labelled metrics phase (see [`Metrics::begin_phase`]).
    pub fn begin_phase(&mut self, label: impl Into<String>) {
        self.metrics.begin_phase(label);
    }

    /// One communication cycle. `plan(u, state)` returns the (destination,
    /// message) this node sends, or `None` to stay silent; `deliver` runs
    /// at each receiving node. Returns the number of messages delivered.
    ///
    /// Steady-state cycles are **allocation-free** (with tracing off): the
    /// plan, validation, and inbox buffers live in machine-owned scratch
    /// storage and are reused across cycles, so a cycle loop touches the
    /// heap only on its first iteration (or when the message type `M`
    /// changes between cycles).
    ///
    /// # Errors
    ///
    /// Any violation of the 1-port synchronous model: sending to a
    /// non-neighbour or to itself, an id out of range, or two messages
    /// converging on one receiver. On error the cycle is *not* applied and
    /// no step is counted, so a test can probe illegal schedules without
    /// corrupting the machine.
    pub fn try_exchange<M: Send + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        self.try_exchange_sized(plan, deliver, |_| 1)
    }

    /// [`Machine::try_exchange`] with explicit payload sizes: `words(msg)`
    /// reports how many elements the message carries, feeding
    /// [`Metrics::message_words`] (block-transfer algorithms pass the
    /// block length; everything else uses the 1-word default).
    pub fn try_exchange_sized<M: Send + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let n = self.states.len();
        let threaded = self.threaded();

        // Phase 1 — plan: read-only over the states, one slot per node,
        // written into the reusable scratch buffer.
        let plans = self.scratch.plans.cleared::<M>();
        if threaded {
            plans.resize_with(n, || None);
            par_zip_apply(plans, &self.states, &|u, slot, s| *slot = plan(u, s));
        } else {
            plans.extend(self.states.iter().enumerate().map(|(u, s)| plan(u, s)));
        }

        // Phase 2 — validate the cycle before touching any state. Always
        // sequential in node order, so error reporting (which violation is
        // surfaced when several exist) is identical on every backend.
        let recv_from = &mut self.scratch.recv_from;
        recv_from.clear();
        recv_from.resize(n, usize::MAX);
        let mut delivered = 0usize;
        let mut total_words = 0u64;
        let mut violation = None;
        for (src, p) in plans.iter().enumerate() {
            if let Some((dst, msg)) = p {
                let dst = *dst;
                if dst >= n {
                    violation = Some(SimError::OutOfRange {
                        node: dst,
                        num_nodes: n,
                    });
                } else if dst == src {
                    violation = Some(SimError::SelfMessage { node: src });
                } else if !self.topo.is_edge(src, dst) {
                    violation = Some(SimError::NotAdjacent { src, dst });
                } else if recv_from[dst] != usize::MAX {
                    violation = Some(SimError::RecvConflict {
                        node: dst,
                        first_src: recv_from[dst],
                        second_src: src,
                    });
                }
                if violation.is_some() {
                    break;
                }
                recv_from[dst] = src;
                delivered += 1;
                total_words += words(msg);
            }
        }
        if let Some(e) = violation {
            // Drop the undelivered messages eagerly rather than letting
            // them linger in scratch until the next cycle overwrites it.
            plans.clear();
            return Err(e);
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push(
                plans
                    .iter()
                    .enumerate()
                    .filter_map(|(src, p)| p.as_ref().map(|&(dst, _)| (src, dst)))
                    .collect(),
            );
        }

        // Phase 3 — deliver. The validated matching guarantees at most one
        // inbound message per node, so the parallel backend scatters the
        // messages into a per-node inbox (also reusable scratch) and lets
        // each worker mutate only its own node's state.
        if threaded {
            let inbox = self.scratch.inbox.cleared::<M>();
            inbox.resize_with(n, || None);
            for (src, p) in plans.iter_mut().enumerate() {
                if let Some((dst, msg)) = p.take() {
                    inbox[dst] = Some((src, msg));
                }
            }
            par_zip_apply_mut(&mut self.states, inbox, &|_, s, slot| {
                if let Some((src, msg)) = slot.take() {
                    deliver(s, src, msg);
                }
            });
        } else {
            for (src, p) in plans.iter_mut().enumerate() {
                if let Some((dst, msg)) = p.take() {
                    deliver(&mut self.states[dst], src, msg);
                }
            }
        }
        self.metrics
            .record_comm_words(delivered as u64, total_words);
        Ok(delivered)
    }

    /// [`Machine::try_exchange`] that panics on a model violation — the
    /// form algorithm implementations use, since their schedules are
    /// supposed to be legal by construction. Steady-state cycles are
    /// allocation-free — see [`Machine::try_exchange`].
    #[track_caller]
    pub fn exchange<M: Send + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_exchange(plan, deliver) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Fills `out` with each node's chosen partner, in parallel when
    /// threaded. (`out` is the reusable scratch buffer, moved out of
    /// `self` during the call so the state borrow stays clean.)
    fn collect_partners_into(
        &self,
        pair: &(impl Fn(NodeId, &S) -> Option<NodeId> + Sync),
        out: &mut Vec<Option<NodeId>>,
    ) where
        S: Send + Sync,
    {
        out.clear();
        if self.threaded() {
            out.resize(self.states.len(), None);
            par_zip_apply(out, &self.states, &|u, slot, s| {
                *slot = pair(u, s);
            });
        } else {
            out.extend(self.states.iter().enumerate().map(|(u, s)| pair(u, s)));
        }
    }

    /// One symmetric pairwise exchange cycle: `pair(u, state)` names `u`'s
    /// partner (or `None` to sit out); partners must name each other.
    /// Every participating node sends `msg(u, state)` to its partner and
    /// `deliver(state, partner, message)` runs at each participant.
    ///
    /// Like [`Machine::try_exchange`], steady-state cycles perform zero
    /// heap allocations (the partner table is machine-owned scratch too).
    ///
    /// # Errors
    ///
    /// [`SimError::AsymmetricPair`] if the matching is not symmetric, plus
    /// everything [`Machine::try_exchange`] can report.
    pub fn try_pairwise<M: Send + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        self.try_pairwise_sized(pair, msg, deliver, |_| 1)
    }

    /// [`Machine::try_pairwise`] with explicit payload sizes (see
    /// [`Machine::try_exchange_sized`]).
    pub fn try_pairwise_sized<M: Send + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64,
    ) -> Result<usize, SimError>
    where
        S: Send + Sync,
    {
        let n = self.states.len();
        // Pre-validate symmetry so the error is precise (try_exchange
        // would report it as a receive conflict or not at all). The
        // partner table is reusable scratch, moved out for the duration
        // of the cycle and always restored before returning.
        let mut partners = std::mem::take(&mut self.scratch.partners);
        self.collect_partners_into(&pair, &mut partners);
        let symmetric = (|| {
            for (u, &p) in partners.iter().enumerate() {
                if let Some(v) = p {
                    if v >= n {
                        return Err(SimError::OutOfRange {
                            node: v,
                            num_nodes: n,
                        });
                    }
                    if partners[v] != Some(u) {
                        return Err(SimError::AsymmetricPair { a: u, b: v });
                    }
                }
            }
            Ok(())
        })();
        let result = match symmetric {
            Ok(()) => self.try_exchange_sized(
                |u, s| partners[u].map(|v| (v, msg(u, s))),
                |s, from, m| deliver(s, from, m),
                words,
            ),
            Err(e) => Err(e),
        };
        self.scratch.partners = partners;
        result
    }

    /// Panicking form of [`Machine::try_pairwise_sized`].
    #[track_caller]
    pub fn pairwise_sized<M: Send + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_pairwise_sized(pair, msg, deliver, words) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Panicking form of [`Machine::try_exchange_sized`].
    #[track_caller]
    pub fn exchange_sized<M: Send + 'static>(
        &mut self,
        plan: impl Fn(NodeId, &S) -> Option<(NodeId, M)> + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
        words: impl Fn(&M) -> u64,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_exchange_sized(plan, deliver, words) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Panicking form of [`Machine::try_pairwise`]. Steady-state cycles
    /// are allocation-free — see [`Machine::try_pairwise`].
    #[track_caller]
    pub fn pairwise<M: Send + 'static>(
        &mut self,
        pair: impl Fn(NodeId, &S) -> Option<NodeId> + Sync,
        msg: impl Fn(NodeId, &S) -> M + Sync,
        deliver: impl Fn(&mut S, NodeId, M) + Sync,
    ) -> usize
    where
        S: Send + Sync,
    {
        match self.try_pairwise(pair, msg, deliver) {
            Ok(count) => count,
            Err(e) => panic!("communication-model violation: {e}"),
        }
    }

    /// Runs `f` once per node, on the configured backend.
    fn apply(&mut self, f: impl Fn(NodeId, &mut S) + Sync)
    where
        S: Send,
    {
        if self.threaded() {
            par_apply_forced(&mut self.states, &f);
        } else {
            for (u, s) in self.states.iter_mut().enumerate() {
                f(u, s);
            }
        }
    }

    /// One local computation **phase**, charged as `steps` computation
    /// cycles.
    ///
    /// `f` is invoked **exactly once** per node regardless of `steps`:
    /// `steps` is the simulated *duration* of the phase (a node-local
    /// computation that the cost model prices at `steps` cycles, e.g. a
    /// `k`-element local merge), not a repetition count. Algorithms whose
    /// per-cycle work really does differ cycle-to-cycle issue one
    /// `compute(1, …)` per cycle. This single-invocation semantics is
    /// pinned by the `compute_invokes_f_once_regardless_of_steps`
    /// regression test.
    ///
    /// `steps × num_nodes` element operations are charged to the
    /// fine-grained counter (nodes that do nothing this phase are the
    /// caller's business — the *step* cost is global, per the synchronous
    /// model); use [`Machine::compute_counted`] to charge a precise
    /// operation count.
    pub fn compute(&mut self, steps: u64, f: impl Fn(NodeId, &mut S) + Sync)
    where
        S: Send,
    {
        let ops = steps * self.states.len() as u64;
        self.apply(f);
        self.metrics.record_comp(steps, ops);
    }

    /// Like [`Machine::compute`] but charges exactly `element_ops` total
    /// operations (for phases where only a subset of nodes works). As
    /// with [`Machine::compute`], `f` runs exactly once per node.
    pub fn compute_counted(
        &mut self,
        steps: u64,
        element_ops: u64,
        f: impl Fn(NodeId, &mut S) + Sync,
    ) where
        S: Send,
    {
        self.apply(f);
        self.metrics.record_comp(steps, element_ops);
    }

    /// Applies `f` to every node *without* charging any simulated cost —
    /// for initial data placement and final result collection, which the
    /// paper's step counts exclude.
    pub fn setup(&mut self, f: impl Fn(NodeId, &mut S) + Sync)
    where
        S: Send,
    {
        self.apply(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::PAR_THRESHOLD;
    use dc_topology::Hypercube;

    fn machine(dim: u32) -> Machine<'static, Hypercube, u64> {
        // Leak a tiny topology to get a 'static reference in tests.
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(dim)));
        let n = topo.num_nodes();
        Machine::new(topo, (0..n as u64).collect())
    }

    #[test]
    fn exchange_delivers_and_counts() {
        let mut m = machine(2);
        // Everyone sends its value across dimension 0.
        let delivered = m.exchange(|u, &s| Some((u ^ 1, s)), |s, _, v| *s += v);
        assert_eq!(delivered, 4);
        assert_eq!(m.states(), &[1, 1, 5, 5]);
        assert_eq!(m.metrics().comm_steps, 1);
        assert_eq!(m.metrics().messages, 4);
    }

    #[test]
    fn non_adjacent_send_rejected() {
        let mut m = machine(2);
        let err = m
            .try_exchange(
                |u, &s| if u == 0 { Some((3, s)) } else { None },
                |_, _, _: u64| {},
            )
            .unwrap_err();
        assert_eq!(err, SimError::NotAdjacent { src: 0, dst: 3 });
        // Machine untouched, no step counted.
        assert_eq!(m.metrics().comm_steps, 0);
        assert_eq!(m.states(), &[0, 1, 2, 3]);
    }

    #[test]
    fn recv_conflict_rejected() {
        let mut m = machine(2);
        // Nodes 1 and 2 both send to node 0 (a neighbour of both in Q_2).
        let err = m
            .try_exchange(
                |u, &s| match u {
                    1 => Some((0, s)),
                    2 => Some((0, s)),
                    _ => None,
                },
                |_, _, _: u64| {},
            )
            .unwrap_err();
        match err {
            SimError::RecvConflict { node, .. } => assert_eq!(node, 0),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn self_message_rejected() {
        let mut m = machine(2);
        let err = m
            .try_exchange(
                |u, &s| if u == 1 { Some((1, s)) } else { None },
                |_, _, _: u64| {},
            )
            .unwrap_err();
        assert_eq!(err, SimError::SelfMessage { node: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = machine(2);
        let err = m
            .try_exchange(
                |u, &s| if u == 0 { Some((9, s)) } else { None },
                |_, _, _: u64| {},
            )
            .unwrap_err();
        assert_eq!(
            err,
            SimError::OutOfRange {
                node: 9,
                num_nodes: 4
            }
        );
    }

    #[test]
    fn asymmetric_pair_rejected() {
        let mut m = machine(2);
        let err = m
            .try_pairwise(
                |u, _| if u == 0 { Some(1) } else { None },
                |_, &s| s,
                |_, _, _| {},
            )
            .unwrap_err();
        assert_eq!(err, SimError::AsymmetricPair { a: 0, b: 1 });
    }

    #[test]
    #[should_panic(expected = "communication-model violation")]
    fn exchange_panics_on_violation() {
        let mut m = machine(2);
        m.exchange(
            |u, &s| if u == 0 { Some((3, s)) } else { None },
            |_, _, _: u64| {},
        );
    }

    #[test]
    fn pairwise_swaps_values() {
        let mut m = machine(3);
        m.pairwise(|u, _| Some(u ^ 0b100), |_, &s| s, |s, _, v| *s = v);
        assert_eq!(m.states(), &[4, 5, 6, 7, 0, 1, 2, 3]);
        assert_eq!(m.metrics().comm_steps, 1);
        assert_eq!(m.metrics().messages, 8);
    }

    #[test]
    fn partial_matching_allowed() {
        let mut m = machine(2);
        // Only the pair {0, 1} exchanges.
        let count = m.pairwise(
            |u, _| if u < 2 { Some(u ^ 1) } else { None },
            |_, &s| s,
            |s, _, v| *s = v,
        );
        assert_eq!(count, 2);
        assert_eq!(m.states(), &[1, 0, 2, 3]);
    }

    #[test]
    fn compute_counts_steps_and_ops() {
        let mut m = machine(2);
        m.compute(1, |_, s| *s *= 2);
        assert_eq!(m.states(), &[0, 2, 4, 6]);
        assert_eq!(m.metrics().comp_steps, 1);
        assert_eq!(m.metrics().element_ops, 4);
        m.compute_counted(1, 2, |u, s| {
            if u < 2 {
                *s += 1
            }
        });
        assert_eq!(m.metrics().comp_steps, 2);
        assert_eq!(m.metrics().element_ops, 6);
    }

    /// Pins the documented `compute` semantics: `steps` is the charged
    /// duration of ONE invocation of `f` per node, never a repetition
    /// count (the seed version's docs were ambiguous on this).
    #[test]
    fn compute_invokes_f_once_regardless_of_steps() {
        let mut m = machine(2);
        m.compute(5, |_, s| *s += 1);
        // One invocation per node…
        assert_eq!(m.states(), &[1, 2, 3, 4]);
        // …but five cycles (and 5 × 4 element ops) charged.
        assert_eq!(m.metrics().comp_steps, 5);
        assert_eq!(m.metrics().element_ops, 20);
        m.compute_counted(3, 7, |_, s| *s += 10);
        assert_eq!(m.states(), &[11, 12, 13, 14]);
        assert_eq!(m.metrics().comp_steps, 8);
        assert_eq!(m.metrics().element_ops, 27);
    }

    #[test]
    fn setup_is_free() {
        let mut m = machine(2);
        m.setup(|u, s| *s = u as u64 * 10);
        assert_eq!(m.metrics().comp_steps, 0);
        assert_eq!(m.states(), &[0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "one state per node")]
    fn wrong_state_count_rejected() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(2)));
        let _ = Machine::new(topo, vec![0u8; 3]);
    }

    #[test]
    fn exec_mode_is_configurable_and_defaults_to_parallel() {
        let mut m = machine(2);
        assert_eq!(m.exec(), ExecMode::parallel());
        m.set_exec(ExecMode::Sequential);
        assert_eq!(m.exec(), ExecMode::Sequential);
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(1)));
        let m = Machine::with_exec(topo, vec![0u8; 2], ExecMode::Parallel { threshold: 1 });
        assert_eq!(m.exec(), ExecMode::Parallel { threshold: 1 });
    }

    /// A machine big enough to clear PAR_THRESHOLD must produce identical
    /// states, metrics, and traces on both backends (Q_13 = 8192 nodes).
    #[test]
    fn parallel_backend_matches_sequential_on_large_machine() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(13)));
        let n = topo.num_nodes();
        assert!(n >= PAR_THRESHOLD);
        let run = |exec: ExecMode| {
            let mut m = Machine::with_exec(topo, (0..n as u64).collect(), exec);
            m.enable_trace();
            for i in 0..13 {
                m.pairwise(|u, _| Some(u ^ (1 << i)), |_, &s| s, |s, _, v| *s += v);
                m.compute(1, |u, s| *s = s.wrapping_add(u as u64));
            }
            let trace = m.trace().to_vec();
            let (states, metrics) = m.into_parts();
            (states, metrics, trace)
        };
        let _guard = crate::parallel::test_override_guard();
        let seq = run(ExecMode::Sequential);
        // Pin 4 workers so the threaded path is exercised even on a
        // single-core host (the backend is deterministic at any count).
        crate::parallel::set_worker_threads(4);
        let par = run(ExecMode::parallel());
        crate::parallel::set_worker_threads(0);
        assert_eq!(seq.0, par.0, "states");
        assert_eq!(seq.1, par.1, "metrics");
        assert_eq!(seq.2, par.2, "traces");
    }

    /// Model violations must be reported identically (same variant, same
    /// nodes) by both backends, with the machine left untouched.
    #[test]
    fn parallel_backend_error_semantics_bit_identical() {
        let topo: &'static Hypercube = Box::leak(Box::new(Hypercube::new(13)));
        let n = topo.num_nodes();
        let probe = |exec: ExecMode| {
            let mut m = Machine::with_exec(topo, vec![0u64; n], exec);
            // Every node sends to node u|1 across dim 0: odd nodes self-send
            // (caught first at node 1), and pairs collide — the backends
            // must agree on which violation is surfaced.
            let err = m
                .try_exchange(|u, _| Some((u | 1, u as u64)), |_, _, _| {})
                .unwrap_err();
            assert_eq!(m.metrics().comm_steps, 0);
            err
        };
        let _guard = crate::parallel::test_override_guard();
        let seq = probe(ExecMode::Sequential);
        crate::parallel::set_worker_threads(4);
        let par = probe(ExecMode::parallel());
        crate::parallel::set_worker_threads(0);
        assert_eq!(seq, par);
    }
}
