//! # dc-simulator — a synchronous 1-port multicomputer simulator
//!
//! The substrate the paper lacks: both theorems of *Prefix Computation and
//! Sorting in Dual-Cube* (Li, Peng & Chu, ICPP 2008) state step counts
//! under a synchronous, **1-port, bidirectional-channel** communication
//! model ("each node can send and receive at most one message in one clock
//! cycle"), but the paper reports no implementation — "do some simulations
//! and empirical analysis" is its future work. This crate is that
//! simulator.
//!
//! A [`Machine`] holds one state value per node of a
//! [`dc_topology::Topology`] and advances through:
//!
//! * **communication cycles** ([`Machine::exchange`] /
//!   [`Machine::pairwise`]) — validated every cycle: messages must travel
//!   along edges, and no node may send or receive more than one message,
//!   so every reported `T_comm` is simultaneously a machine-checked proof
//!   that the algorithm's schedule is legal under the paper's model;
//! * **computation cycles** ([`Machine::compute`]) — O(1) local work per
//!   node per cycle, the unit of the theorems' `T_comp`.
//!
//! [`Metrics`] accumulates both counts (plus total messages and
//! fine-grained element-operation counts) with optional per-phase
//! breakdowns used by the worked-example experiments.
//!
//! Fixed communication patterns — the common case in the paper's
//! ascend/descend algorithms — can be named with a [`ScheduleKey`] via the
//! keyed entry points ([`Machine::pairwise_keyed`],
//! [`Machine::exchange_keyed`]): the first cycle under a key validates and
//! compiles the pattern, later cycles replay it without the sequential
//! validation pass while still detecting (and rejecting) any deviation.
//! See the [`schedule`] module docs for why replay cannot weaken the
//! model checking.
//!
//! Faults are first-class: a [`FaultPlan`] scripts seed-deterministic
//! node crashes, link cuts, and message drops on the cycle timeline
//! ([`Machine::set_fault_plan`]), surfacing as [`SimError::NodeFailed`] /
//! [`SimError::LinkDown`] when a schedule touches the damage; each crash
//! or cut bumps a *fault epoch* that invalidates every compiled schedule,
//! so replay can never outlive the fault state that validated it. See the
//! [`fault`] module docs.
//!
//! Observability is opt-in and zero-cost when off: installing a recorder
//! ([`Machine::record_into`], or [`with_recording`] around code that
//! builds machines internally) streams one structured [`Event`] per
//! phase and per cycle into a pluggable [`Sink`], with per-link
//! utilization counters and a Perfetto trace exporter on top. See the
//! [`obs`] module docs.

#![warn(missing_docs)]
// `deny`, not `forbid`: the persistent worker pool (`parallel::pool`) is
// the one module allowed to opt back in with `#[allow(unsafe_code)]` —
// keeping threads parked across fork-join rounds requires erasing the
// job's borrow lifetime, the pattern `std::thread::scope` encapsulates
// (and which made the previous spawn-per-phase backend fully safe, at the
// cost of ~0.3–0.5 ms of thread spawn/join per cycle; EXPERIMENTS.md
// §E22/§E23). Everything outside that module remains unsafe-free.
#![deny(unsafe_code)]

mod error;
pub mod fault;
mod machine;
mod metrics;
pub mod obs;
pub mod parallel;
pub mod router;
pub mod schedule;

pub use error::SimError;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use machine::{Machine, TraceEntry};
pub use metrics::{LinkUtil, Metrics, PhaseMetrics};
pub use obs::{
    with_recording, CycleEvent, Event, JsonlSink, LinkReport, MemorySink, PhaseEvent, Recorder,
    SharedSink, Sink,
};
pub use parallel::{set_worker_threads, with_default_exec, ExecMode};
pub use schedule::{with_schedule_replay, ScheduleBank, ScheduleKey};
