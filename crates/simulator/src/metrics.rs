//! Step accounting in the paper's cost model.
//!
//! * A **communication step** is one synchronous cycle in which every node
//!   sends at most one message to a neighbour and receives at most one.
//!   `T_comm` of both theorems counts these cycles.
//! * A **computation step** is one synchronous cycle in which every node
//!   performs O(1) local work (a `⊕` application, a comparison, …).
//!   `T_comp` counts these. With this convention `Cube_prefix` on an
//!   `m`-cube costs `m` communication + `m` computation steps, which makes
//!   the theorem arithmetic come out exactly as printed (Theorem 1:
//!   `2(n−1)+3 = 2n+1` comm and `2(n−1)+2 = 2n` comp).
//! * `element_ops` additionally counts the *total* number of element
//!   operations across all nodes — a finer-grained measure the paper does
//!   not use but the ablation benches report.
//!
//! Metrics can be split into labelled [`PhaseMetrics`] windows so that the
//! worked-example experiments can attribute cost to individual algorithm
//! phases (e.g. the five steps of `D_prefix`).

use std::fmt;

/// Counters for one labelled phase of an algorithm run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Phase label (e.g. `"step 3: cluster prefix over subtotals"`).
    pub label: String,
    /// Communication cycles spent in this phase.
    pub comm_steps: u64,
    /// Computation cycles spent in this phase.
    pub comp_steps: u64,
    /// Total messages delivered in this phase.
    pub messages: u64,
    /// Total message payload, in elements ("words"); a plain message
    /// counts 1, a k-element block counts k.
    pub message_words: u64,
    /// Total element operations performed across all nodes in this phase.
    pub element_ops: u64,
}

/// Cross-edge vs. cube-edge traffic rollup, populated **only while a
/// recorder is installed** (see the `obs` module) — classifying every
/// delivered message costs a topology query per message, which the
/// recorder-off hot path refuses to pay. Zero on unrecorded runs.
///
/// Dual-cube cross edges are the scarce resource (one per node, versus
/// `n−1` cluster edges), so this split is the first-order utilization
/// picture; the full per-link histogram lives on
/// `Recorder::link_report`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkUtil {
    /// Messages delivered over cross edges.
    pub cross_messages: u64,
    /// Payload words delivered over cross edges.
    pub cross_words: u64,
    /// Messages delivered over cube (non-cross) edges.
    pub cube_messages: u64,
    /// Payload words delivered over cube (non-cross) edges.
    pub cube_words: u64,
}

impl LinkUtil {
    /// Counts one delivered message of `words` payload.
    pub fn record(&mut self, cross: bool, words: u64) {
        if cross {
            self.cross_messages += 1;
            self.cross_words += words;
        } else {
            self.cube_messages += 1;
            self.cube_words += words;
        }
    }

    /// Folds a batch of pre-classified counts in — the sharded replay
    /// path accumulates a whole cycle's cross/cube totals in locals and
    /// flushes them here once, instead of calling [`LinkUtil::record`]
    /// per message.
    pub fn add_bulk(&mut self, other: LinkUtil) {
        self.cross_messages += other.cross_messages;
        self.cross_words += other.cross_words;
        self.cube_messages += other.cube_messages;
        self.cube_words += other.cube_words;
    }

    /// Whether nothing has been recorded (the unrecorded-run state).
    pub fn is_empty(&self) -> bool {
        *self == LinkUtil::default()
    }
}

/// Cumulative step counts for a simulated run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total communication steps (synchronous message cycles) — the
    /// quantity bounded by the theorems' `T_comm`.
    pub comm_steps: u64,
    /// Total computation steps (synchronous O(1)-work cycles) — the
    /// theorems' `T_comp`.
    pub comp_steps: u64,
    /// Total messages delivered over the whole run.
    pub messages: u64,
    /// Total message payload in elements ("words") over the whole run —
    /// distinguishes the large-input algorithms (whose step counts stay
    /// flat while payloads grow) from the one-element-per-message ones.
    pub message_words: u64,
    /// Total element operations across all nodes over the whole run.
    pub element_ops: u64,
    /// Keyed communication cycles served by replaying a compiled
    /// schedule (see the `schedule` module). Pure observability — a cold
    /// cache changes wall-clock, never results — surfaced so benches can
    /// assert the cache is actually warm.
    pub schedule_hits: u64,
    /// Keyed communication cycles that compiled their schedule (first
    /// sight of the key). Unkeyed cycles count under neither counter.
    pub schedule_misses: u64,
    /// Communication cycles re-issued because an earlier attempt was
    /// spoiled by a fault (a dropped message, a failed probe). Charged
    /// by the fault-tolerant algorithms in dc-core, on top of the
    /// `comm_steps` the retried cycles themselves cost.
    pub retries: u64,
    /// Messages lost in flight to a scripted
    /// [`FaultKind::MessageDrop`](crate::FaultKind::MessageDrop): they
    /// were validated and sent but never delivered (and are excluded
    /// from `messages`/`message_words`).
    pub dropped_messages: u64,
    /// Extra communication steps a fault-tolerant run spent versus its
    /// fault-free baseline — the routing *dilation* failures force.
    /// Charged by dc-core's fault-tolerant algorithms (the simulator
    /// has no baseline to subtract from).
    pub dilation_hops: u64,
    /// Cross-edge vs. cube-edge traffic split. Populated only while a
    /// recorder is installed (see [`LinkUtil`]); zero otherwise.
    pub link_util: LinkUtil,
    /// Per-phase breakdown, in phase order. Empty if the run never called
    /// [`Metrics::begin_phase`].
    pub phases: Vec<PhaseMetrics>,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Opens a new labelled phase; subsequent counts accrue to it (as well
    /// as to the run totals).
    pub fn begin_phase(&mut self, label: impl Into<String>) {
        self.phases.push(PhaseMetrics {
            label: label.into(),
            ..PhaseMetrics::default()
        });
    }

    /// Records one communication cycle delivering `messages` messages of
    /// one word each.
    pub fn record_comm(&mut self, messages: u64) {
        self.record_comm_words(messages, messages);
    }

    /// Records one communication cycle delivering `messages` messages
    /// totalling `words` payload elements.
    pub fn record_comm_words(&mut self, messages: u64, words: u64) {
        self.comm_steps += 1;
        self.messages += messages;
        self.message_words += words;
        if let Some(p) = self.phases.last_mut() {
            p.comm_steps += 1;
            p.messages += messages;
            p.message_words += words;
        }
    }

    /// Records `steps` computation cycles performing `element_ops` total
    /// operations across the machine.
    pub fn record_comp(&mut self, steps: u64, element_ops: u64) {
        self.comp_steps += steps;
        self.element_ops += element_ops;
        if let Some(p) = self.phases.last_mut() {
            p.comp_steps += steps;
            p.element_ops += element_ops;
        }
    }

    /// Adds another run's totals into this one. Used by algorithms
    /// composed of several machine runs (e.g. radix sort's per-pass
    /// scans, hyperquicksort's pivot broadcasts).
    ///
    /// Phases with a label this run has already seen are **merged**
    /// (counter-wise sum) into the existing entry rather than appended:
    /// absorbing two runs that both have a `"step 1"` phase must leave
    /// [`Metrics::phase`]`("step 1")` describing both, not silently the
    /// first. Unseen labels are appended in `other`'s phase order.
    pub fn absorb(&mut self, other: &Metrics) {
        self.comm_steps += other.comm_steps;
        self.comp_steps += other.comp_steps;
        self.messages += other.messages;
        self.message_words += other.message_words;
        self.element_ops += other.element_ops;
        self.schedule_hits += other.schedule_hits;
        self.schedule_misses += other.schedule_misses;
        self.retries += other.retries;
        self.dropped_messages += other.dropped_messages;
        self.dilation_hops += other.dilation_hops;
        self.link_util.cross_messages += other.link_util.cross_messages;
        self.link_util.cross_words += other.link_util.cross_words;
        self.link_util.cube_messages += other.link_util.cube_messages;
        self.link_util.cube_words += other.link_util.cube_words;
        for p in &other.phases {
            if let Some(mine) = self.phases.iter_mut().find(|m| m.label == p.label) {
                mine.comm_steps += p.comm_steps;
                mine.comp_steps += p.comp_steps;
                mine.messages += p.messages;
                mine.message_words += p.message_words;
                mine.element_ops += p.element_ops;
            } else {
                self.phases.push(p.clone());
            }
        }
    }

    /// `T_comm + T_comp`: the paper's implicit total time when
    /// communication and computation are not overlapped.
    pub fn total_steps(&self) -> u64 {
        self.comm_steps + self.comp_steps
    }

    /// The phase with the given label, if any phase was so labelled.
    pub fn phase(&self, label: &str) -> Option<&PhaseMetrics> {
        self.phases.iter().find(|p| p.label == label)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comm={} comp={} (messages={}, words={}, element_ops={}, \
             schedule hits={}/misses={})",
            self.comm_steps,
            self.comp_steps,
            self.messages,
            self.message_words,
            self.element_ops,
            self.schedule_hits,
            self.schedule_misses
        )?;
        if self.retries != 0 || self.dropped_messages != 0 || self.dilation_hops != 0 {
            write!(
                f,
                " [faults: retries={}, dropped={}, dilation={}]",
                self.retries, self.dropped_messages, self.dilation_hops
            )?;
        }
        if !self.link_util.is_empty() {
            write!(
                f,
                " [links: cross={} msgs/{} words, cube={} msgs/{} words]",
                self.link_util.cross_messages,
                self.link_util.cross_words,
                self.link_util.cube_messages,
                self.link_util.cube_words
            )?;
        }
        for p in &self.phases {
            write!(
                f,
                "\n  {:<40} comm={:>4} comp={:>4} msgs={:>8} words={:>8}",
                p.label, p.comm_steps, p.comp_steps, p.messages, p.message_words
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut m = Metrics::new();
        m.record_comm(8);
        m.record_comm(4);
        m.record_comp(1, 16);
        assert_eq!(m.comm_steps, 2);
        assert_eq!(m.messages, 12);
        assert_eq!(m.comp_steps, 1);
        assert_eq!(m.element_ops, 16);
        assert_eq!(m.total_steps(), 3);
    }

    #[test]
    fn phases_split_counts() {
        let mut m = Metrics::new();
        m.begin_phase("a");
        m.record_comm(2);
        m.begin_phase("b");
        m.record_comm(3);
        m.record_comp(2, 5);
        assert_eq!(m.comm_steps, 2);
        assert_eq!(m.phase("a").unwrap().comm_steps, 1);
        assert_eq!(m.phase("a").unwrap().messages, 2);
        assert_eq!(m.phase("b").unwrap().comm_steps, 1);
        assert_eq!(m.phase("b").unwrap().comp_steps, 2);
        assert!(m.phase("c").is_none());
    }

    #[test]
    fn counts_before_first_phase_go_to_totals_only() {
        let mut m = Metrics::new();
        m.record_comm(1);
        m.begin_phase("late");
        assert_eq!(m.comm_steps, 1);
        assert_eq!(m.phase("late").unwrap().comm_steps, 0);
    }

    #[test]
    fn absorb_sums_all_counters() {
        let mut a = Metrics::new();
        a.record_comm_words(2, 5);
        a.record_comp(1, 3);
        let mut b = Metrics::new();
        b.begin_phase("x");
        b.record_comm(1);
        b.retries = 2;
        b.dropped_messages = 3;
        b.dilation_hops = 4;
        a.absorb(&b);
        assert_eq!(a.comm_steps, 2);
        assert_eq!(a.messages, 3);
        assert_eq!(a.message_words, 6);
        assert_eq!(a.phases.len(), 1);
        assert_eq!(a.retries, 2);
        assert_eq!(a.dropped_messages, 3);
        assert_eq!(a.dilation_hops, 4);
    }

    /// Regression: absorbing two runs that used the same phase label must
    /// merge the phases, not leave two entries of which `phase(label)`
    /// silently returns only the first.
    #[test]
    fn absorb_merges_same_labelled_phases() {
        let mut pass = Metrics::new();
        pass.begin_phase("scan");
        pass.record_comm_words(4, 8);
        pass.record_comp(1, 4);

        let mut total = Metrics::new();
        total.absorb(&pass);
        total.absorb(&pass); // a second pass with the identical label

        assert_eq!(total.phases.len(), 1, "same label must merge");
        let scan = total.phase("scan").unwrap();
        assert_eq!(scan.comm_steps, 2);
        assert_eq!(scan.comp_steps, 2);
        assert_eq!(scan.messages, 8);
        assert_eq!(scan.message_words, 16);
        assert_eq!(scan.element_ops, 8);
        // Totals agree with the (previously-correct) run-level sums.
        assert_eq!(total.comm_steps, 2);
        assert_eq!(total.messages, 8);
        // Distinct labels still append, in arrival order.
        let mut other = Metrics::new();
        other.begin_phase("combine");
        other.record_comp(1, 2);
        total.absorb(&other);
        assert_eq!(total.phases.len(), 2);
        assert_eq!(total.phases[1].label, "combine");
    }

    /// Regression: `absorb` must merge the link-utilization counters too
    /// — a multi-machine recorded run (radix sort's per-pass scans) would
    /// otherwise silently report only its last machine's link traffic.
    #[test]
    fn absorb_sums_link_utilization() {
        let mut pass = Metrics::new();
        pass.link_util.record(true, 3);
        pass.link_util.record(false, 5);
        pass.link_util.record(false, 5);

        let mut total = Metrics::new();
        total.absorb(&pass);
        total.absorb(&pass);
        assert_eq!(total.link_util.cross_messages, 2);
        assert_eq!(total.link_util.cross_words, 6);
        assert_eq!(total.link_util.cube_messages, 4);
        assert_eq!(total.link_util.cube_words, 20);
        assert!(!total.link_util.is_empty());
        // Unrecorded runs stay empty and keep Display quiet.
        assert!(Metrics::new().link_util.is_empty());
        assert!(!Metrics::new().to_string().contains("links:"));
        assert!(total.to_string().contains("cross=2 msgs/6 words"));
    }

    /// Regression for the lane/metrics contract: a lane-batched cycle
    /// charges `words = K·messages`, and absorbing several lane-strided
    /// runs that share phase labels must sum — not double- or
    /// under-count — both the run totals and the per-phase and link
    /// counters. (The collision scenario: two K-lane passes with the
    /// identical phase label merged into one rollup.)
    #[test]
    fn absorb_keeps_lane_scaled_words_consistent() {
        let lanes = 4u64;
        let make_pass = || {
            let mut p = Metrics::new();
            p.begin_phase("lane sweep");
            // Two cycles of 8 messages, each message carrying K lanes.
            p.record_comm_words(8, 8 * lanes);
            p.record_comm_words(8, 8 * lanes);
            for _ in 0..16 {
                p.link_util.record(false, lanes);
            }
            p
        };
        let mut total = Metrics::new();
        total.absorb(&make_pass());
        total.absorb(&make_pass());
        // Run totals: K·messages words, exactly once per delivered message.
        assert_eq!(total.messages, 32);
        assert_eq!(total.message_words, 32 * lanes);
        // The colliding phase merged, with the same K scaling.
        assert_eq!(total.phases.len(), 1);
        let sweep = total.phase("lane sweep").unwrap();
        assert_eq!(sweep.messages, 32);
        assert_eq!(sweep.message_words, 32 * lanes);
        // Link utilization agrees with the run totals: every delivered
        // message appears on exactly one link, at lane-scaled words.
        assert_eq!(total.link_util.cube_messages, total.messages);
        assert_eq!(total.link_util.cube_words, total.message_words);
    }

    #[test]
    fn display_contains_counts() {
        let mut m = Metrics::new();
        m.begin_phase("phase x");
        m.record_comm_words(7, 21);
        m.schedule_hits = 5;
        m.schedule_misses = 2;
        let s = m.to_string();
        assert!(s.contains("comm=1"));
        assert!(s.contains("phase x"));
        // Regression: words and cache counters used to be dropped, making
        // a cold cache indistinguishable from a warm one in bench logs.
        assert!(s.contains("words=21"));
        assert!(s.contains("hits=5"));
        assert!(s.contains("misses=2"));
        // Fault counters stay quiet on fault-free runs…
        assert!(!s.contains("retries"));
        // …and appear once any of them is nonzero.
        m.retries = 1;
        m.dropped_messages = 2;
        let s = m.to_string();
        assert!(s.contains("retries=1"));
        assert!(s.contains("dropped=2"));
        assert!(s.contains("dilation=0"));
    }
}
