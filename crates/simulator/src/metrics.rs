//! Step accounting in the paper's cost model.
//!
//! * A **communication step** is one synchronous cycle in which every node
//!   sends at most one message to a neighbour and receives at most one.
//!   `T_comm` of both theorems counts these cycles.
//! * A **computation step** is one synchronous cycle in which every node
//!   performs O(1) local work (a `⊕` application, a comparison, …).
//!   `T_comp` counts these. With this convention `Cube_prefix` on an
//!   `m`-cube costs `m` communication + `m` computation steps, which makes
//!   the theorem arithmetic come out exactly as printed (Theorem 1:
//!   `2(n−1)+3 = 2n+1` comm and `2(n−1)+2 = 2n` comp).
//! * `element_ops` additionally counts the *total* number of element
//!   operations across all nodes — a finer-grained measure the paper does
//!   not use but the ablation benches report.
//!
//! Metrics can be split into labelled [`PhaseMetrics`] windows so that the
//! worked-example experiments can attribute cost to individual algorithm
//! phases (e.g. the five steps of `D_prefix`).

use std::fmt;

/// Counters for one labelled phase of an algorithm run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Phase label (e.g. `"step 3: cluster prefix over subtotals"`).
    pub label: String,
    /// Communication cycles spent in this phase.
    pub comm_steps: u64,
    /// Computation cycles spent in this phase.
    pub comp_steps: u64,
    /// Total messages delivered in this phase.
    pub messages: u64,
    /// Total message payload, in elements ("words"); a plain message
    /// counts 1, a k-element block counts k.
    pub message_words: u64,
    /// Total element operations performed across all nodes in this phase.
    pub element_ops: u64,
}

/// Cumulative step counts for a simulated run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total communication steps (synchronous message cycles) — the
    /// quantity bounded by the theorems' `T_comm`.
    pub comm_steps: u64,
    /// Total computation steps (synchronous O(1)-work cycles) — the
    /// theorems' `T_comp`.
    pub comp_steps: u64,
    /// Total messages delivered over the whole run.
    pub messages: u64,
    /// Total message payload in elements ("words") over the whole run —
    /// distinguishes the large-input algorithms (whose step counts stay
    /// flat while payloads grow) from the one-element-per-message ones.
    pub message_words: u64,
    /// Total element operations across all nodes over the whole run.
    pub element_ops: u64,
    /// Keyed communication cycles served by replaying a compiled
    /// schedule (see the `schedule` module). Pure observability — a cold
    /// cache changes wall-clock, never results — surfaced so benches can
    /// assert the cache is actually warm.
    pub schedule_hits: u64,
    /// Keyed communication cycles that compiled their schedule (first
    /// sight of the key). Unkeyed cycles count under neither counter.
    pub schedule_misses: u64,
    /// Per-phase breakdown, in phase order. Empty if the run never called
    /// [`Metrics::begin_phase`].
    pub phases: Vec<PhaseMetrics>,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Opens a new labelled phase; subsequent counts accrue to it (as well
    /// as to the run totals).
    pub fn begin_phase(&mut self, label: impl Into<String>) {
        self.phases.push(PhaseMetrics {
            label: label.into(),
            ..PhaseMetrics::default()
        });
    }

    /// Records one communication cycle delivering `messages` messages of
    /// one word each.
    pub fn record_comm(&mut self, messages: u64) {
        self.record_comm_words(messages, messages);
    }

    /// Records one communication cycle delivering `messages` messages
    /// totalling `words` payload elements.
    pub fn record_comm_words(&mut self, messages: u64, words: u64) {
        self.comm_steps += 1;
        self.messages += messages;
        self.message_words += words;
        if let Some(p) = self.phases.last_mut() {
            p.comm_steps += 1;
            p.messages += messages;
            p.message_words += words;
        }
    }

    /// Records `steps` computation cycles performing `element_ops` total
    /// operations across the machine.
    pub fn record_comp(&mut self, steps: u64, element_ops: u64) {
        self.comp_steps += steps;
        self.element_ops += element_ops;
        if let Some(p) = self.phases.last_mut() {
            p.comp_steps += steps;
            p.element_ops += element_ops;
        }
    }

    /// Adds another run's totals into this one (phases are appended).
    /// Used by algorithms composed of several machine runs (e.g. radix
    /// sort's per-pass scans, hyperquicksort's pivot broadcasts).
    pub fn absorb(&mut self, other: &Metrics) {
        self.comm_steps += other.comm_steps;
        self.comp_steps += other.comp_steps;
        self.messages += other.messages;
        self.message_words += other.message_words;
        self.element_ops += other.element_ops;
        self.schedule_hits += other.schedule_hits;
        self.schedule_misses += other.schedule_misses;
        self.phases.extend(other.phases.iter().cloned());
    }

    /// `T_comm + T_comp`: the paper's implicit total time when
    /// communication and computation are not overlapped.
    pub fn total_steps(&self) -> u64 {
        self.comm_steps + self.comp_steps
    }

    /// The phase with the given label, if any phase was so labelled.
    pub fn phase(&self, label: &str) -> Option<&PhaseMetrics> {
        self.phases.iter().find(|p| p.label == label)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comm={} comp={} (messages={}, element_ops={})",
            self.comm_steps, self.comp_steps, self.messages, self.element_ops
        )?;
        for p in &self.phases {
            write!(
                f,
                "\n  {:<40} comm={:>4} comp={:>4} msgs={:>8}",
                p.label, p.comm_steps, p.comp_steps, p.messages
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut m = Metrics::new();
        m.record_comm(8);
        m.record_comm(4);
        m.record_comp(1, 16);
        assert_eq!(m.comm_steps, 2);
        assert_eq!(m.messages, 12);
        assert_eq!(m.comp_steps, 1);
        assert_eq!(m.element_ops, 16);
        assert_eq!(m.total_steps(), 3);
    }

    #[test]
    fn phases_split_counts() {
        let mut m = Metrics::new();
        m.begin_phase("a");
        m.record_comm(2);
        m.begin_phase("b");
        m.record_comm(3);
        m.record_comp(2, 5);
        assert_eq!(m.comm_steps, 2);
        assert_eq!(m.phase("a").unwrap().comm_steps, 1);
        assert_eq!(m.phase("a").unwrap().messages, 2);
        assert_eq!(m.phase("b").unwrap().comm_steps, 1);
        assert_eq!(m.phase("b").unwrap().comp_steps, 2);
        assert!(m.phase("c").is_none());
    }

    #[test]
    fn counts_before_first_phase_go_to_totals_only() {
        let mut m = Metrics::new();
        m.record_comm(1);
        m.begin_phase("late");
        assert_eq!(m.comm_steps, 1);
        assert_eq!(m.phase("late").unwrap().comm_steps, 0);
    }

    #[test]
    fn absorb_sums_all_counters() {
        let mut a = Metrics::new();
        a.record_comm_words(2, 5);
        a.record_comp(1, 3);
        let mut b = Metrics::new();
        b.begin_phase("x");
        b.record_comm(1);
        a.absorb(&b);
        assert_eq!(a.comm_steps, 2);
        assert_eq!(a.messages, 3);
        assert_eq!(a.message_words, 6);
        assert_eq!(a.phases.len(), 1);
    }

    #[test]
    fn display_contains_counts() {
        let mut m = Metrics::new();
        m.begin_phase("phase x");
        m.record_comm(7);
        let s = m.to_string();
        assert!(s.contains("comm=1"));
        assert!(s.contains("phase x"));
    }
}
