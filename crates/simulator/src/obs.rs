//! Structured cycle-event tracing: a zero-cost-when-off observability
//! layer for the simulator.
//!
//! The paper's theorems are statements about *per-phase* step counts
//! (Theorem 1 splits `D_prefix`'s `2n+1` communication steps across five
//! named phases), but aggregate [`Metrics`] counters cannot show where
//! cycles, wall-clock time, or link traffic actually go. This module adds
//! an event stream: a [`Recorder`] installed on a
//! [`Machine`](crate::Machine) emits one [`Event`] per labelled phase and
//! per executed cycle — carrying the cycle kind, the active phase, the
//! [`ScheduleKey`] and cache disposition, the fault epoch, the backend
//! and its worker count, message/word counts, and a wall-clock duration
//! measured around the dispatch — into a pluggable [`Sink`]. Two sinks
//! ship: [`MemorySink`] (optionally a bounded ring) for tests and tools,
//! and [`JsonlSink`] for streaming one JSON object per line. The
//! [`export_perfetto`] function converts a recorded stream into Chrome
//! trace-event JSON (phases become duration events, cycles become
//! instants) that opens directly in `ui.perfetto.dev`.
//!
//! # Cost model
//!
//! *Recorder off* (the default): the hot path performs one
//! `Option::is_none` check per cycle and **zero** allocations or clock
//! reads — pinned by `tests/zero_alloc.rs` and the `cycle_overhead`
//! bench. The worker pool's per-dispatch timing is additionally gated on
//! a process-global recorder count, so an idle process never calls
//! `Instant::now` in the fork-join path at all.
//!
//! *Recorder on*: each cycle costs two clock reads, an event allocation,
//! and a sink lock; link-utilization accounting adds one
//! [`Topology::is_cross_edge`](dc_topology::Topology::is_cross_edge)
//! query per delivered message. Overheads are measured in
//! EXPERIMENTS.md §E25.
//!
//! # Determinism
//!
//! Sequential and parallel backends emit **identical** event streams
//! modulo the timing fields ([`CycleEvent::at_ns`],
//! [`CycleEvent::dur_ns`], [`CycleEvent::pool`], and
//! [`CycleEvent::backend`] itself) — compare streams with
//! [`Event::normalized`]. The `recorder_determinism` integration test
//! pins this across backends × replay settings.

use crate::metrics::Metrics;
use crate::schedule::ScheduleKey;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which kind of synchronous cycle a [`CycleEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleKind {
    /// A communication cycle (one validated 1-port message exchange).
    Comm,
    /// One or more computation cycles charged together by
    /// [`Machine::compute`](crate::Machine::compute).
    Comp,
}

impl CycleKind {
    fn as_str(self) -> &'static str {
        match self {
            CycleKind::Comm => "comm",
            CycleKind::Comp => "comp",
        }
    }
}

/// How a communication cycle interacted with the schedule cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The cycle ran through an unkeyed entry point; nothing to cache.
    Unkeyed,
    /// The cycle was keyed but the machine has schedule replay disabled
    /// (see [`with_schedule_replay`](crate::with_schedule_replay)), so it
    /// ran full validation without touching the cache.
    Bypass,
    /// First sight of the key (in this fault epoch): the cycle ran full
    /// validation and compiled its schedule.
    Miss,
    /// The cycle replayed a previously compiled schedule.
    Hit,
}

impl CacheStatus {
    fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Unkeyed => "unkeyed",
            CacheStatus::Bypass => "bypass",
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
        }
    }
}

/// Which execution backend ran the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The in-thread sequential backend.
    Sequential,
    /// The persistent worker pool.
    Threaded {
        /// Worker threads available to the pool for this cycle.
        workers: usize,
    },
}

/// Per-cycle timing totals reported by the worker pool: how long the
/// cycle's fork-join dispatches spent publishing work versus executing
/// it. Only populated while a recorder is installed (the pool's clock
/// reads are gated on a process-global recorder count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolDispatchStats {
    /// Fork-join dispatches issued during the cycle (plan, validation,
    /// delivery, … phases each dispatch once).
    pub dispatches: u64,
    /// Total nanoseconds from dispatch entry to the job being published
    /// to the workers (resize + publish cost).
    pub queue_ns: u64,
    /// Total nanoseconds from publication to the last worker clearing
    /// the join barrier.
    pub exec_ns: u64,
}

/// One labelled phase opening, emitted by
/// [`Machine::begin_phase`](crate::Machine::begin_phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Position of this event in its recorder's stream (0-based).
    pub seq: u64,
    /// Index of the phase in [`Metrics::phases`].
    pub index: u32,
    /// The phase label, exactly as passed to `begin_phase`.
    pub label: String,
    /// Nanoseconds since the recorder was installed.
    pub at_ns: u64,
}

/// One executed cycle. Emitted after the cycle commits — failed cycles
/// (validation errors, fault hits) emit nothing, mirroring the machine's
/// "errors charge no step" contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleEvent {
    /// Position of this event in its recorder's stream (0-based).
    pub seq: u64,
    /// Communication or computation.
    pub kind: CycleKind,
    /// Kind-relative cycle index: the value of
    /// [`Metrics::comm_steps`] / [`Metrics::comp_steps`] *before* this
    /// event's cycles were charged.
    pub cycle: u64,
    /// Cycles charged by this event (always 1 for `Comm`; the `steps`
    /// argument for `Comp`).
    pub steps: u64,
    /// Index into [`Metrics::phases`] of the phase active when the cycle
    /// ran, or `None` before the first `begin_phase`.
    pub phase: Option<u32>,
    /// The schedule key, for keyed communication cycles.
    pub key: Option<ScheduleKey>,
    /// Schedule-cache disposition of the cycle.
    pub cache: CacheStatus,
    /// The machine's fault epoch when the cycle ran.
    pub fault_epoch: u64,
    /// Messages delivered (drops excluded), `0` for `Comp`.
    pub messages: u64,
    /// Payload words delivered (drops excluded), `0` for `Comp`.
    pub words: u64,
    /// Messages lost to scripted drops this cycle.
    pub dropped: u64,
    /// Payload lanes carried per message: `1` for ordinary cycles (and
    /// `Comp` events), `K` for lane-batched communication cycles —
    /// `words = lanes × messages` for full-lane cycles.
    pub lanes: u32,
    /// Element operations charged, `0` for `Comm`.
    pub ops: u64,
    /// Backend that executed the cycle.
    pub backend: Backend,
    /// Nanoseconds since the recorder was installed, taken at emission.
    pub at_ns: u64,
    /// Wall-clock nanoseconds measured around the whole cycle dispatch.
    pub dur_ns: u64,
    /// Worker-pool dispatch timing, when the cycle used the pool.
    pub pool: Option<PoolDispatchStats>,
}

/// A recorded event: a phase opening or an executed cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// See [`PhaseEvent`].
    Phase(PhaseEvent),
    /// See [`CycleEvent`].
    Cycle(CycleEvent),
}

impl Event {
    /// This event with every timing-dependent field zeroed: `at_ns`,
    /// `dur_ns`, and the pool stats cleared, and the backend collapsed
    /// to [`Backend::Sequential`]. Two runs of the same program emit
    /// streams whose normalized forms are equal regardless of backend,
    /// worker count, or wall-clock — the determinism tests compare
    /// exactly this.
    pub fn normalized(&self) -> Event {
        match self {
            Event::Phase(p) => Event::Phase(PhaseEvent {
                at_ns: 0,
                ..p.clone()
            }),
            Event::Cycle(c) => Event::Cycle(CycleEvent {
                at_ns: 0,
                dur_ns: 0,
                pool: None,
                backend: Backend::Sequential,
                ..c.clone()
            }),
        }
    }
}

/// Receives recorded events. Implementations must be cheap per call —
/// the recorder holds a lock across [`Sink::record`].
///
/// `Send` is a supertrait so sinks can be shared through the
/// process-global default ([`with_recording`]) and across cloned
/// machines.
pub trait Sink: Send {
    /// Accepts one event. Errors (e.g. a full pipe under [`JsonlSink`])
    /// are the sink's problem; observability must never fail the run.
    fn record(&mut self, event: &Event);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// A shareable handle to a sink: the machine's recorder, the
/// process-global default, and the caller inspecting results all hold
/// clones of the same `Arc`.
pub type SharedSink = Arc<Mutex<dyn Sink>>;

/// Wraps a sink in the shared handle the recorder APIs take.
pub fn shared<S: Sink + 'static>(sink: S) -> Arc<Mutex<S>> {
    Arc::new(Mutex::new(sink))
}

/// An in-memory sink: unbounded by default, or a fixed-capacity ring
/// ([`MemorySink::ring`]) that keeps only the newest events. The test
/// and CLI workhorse.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: VecDeque<Event>,
    cap: Option<usize>,
    evicted: u64,
}

impl MemorySink {
    /// An unbounded memory sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A ring buffer keeping the most recent `cap` events; older events
    /// are evicted (and counted in [`MemorySink::evicted`]).
    pub fn ring(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        MemorySink {
            events: VecDeque::with_capacity(cap),
            cap: Some(cap),
            evicted: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound (0 for unbounded sinks).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        if let Some(cap) = self.cap {
            if self.events.len() == cap {
                self.events.pop_front();
                self.evicted += 1;
            }
        }
        self.events.push_back(event.clone());
    }
}

/// A streaming sink writing one JSON object per event, one per line
/// (JSON Lines). Write errors are swallowed — observability must never
/// fail the run — but stop incrementing [`JsonlSink::lines`], so tests
/// can detect a dead writer.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    lines: u64,
}

impl JsonlSink {
    /// Streams events to `out`.
    pub fn new(out: impl Write + Send + 'static) -> Self {
        JsonlSink {
            out: Box::new(out),
            lines: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let mut line = event_to_json(event);
        line.push('\n');
        if self.out.write_all(line.as_bytes()).is_ok() {
            self.lines += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Per-link traffic counters kept by the recorder. Stored in a flat
/// port-indexed table (slot `min(a,b) · max_ports + port_of(min, max)`,
/// computed by the machine), so the per-message accounting path is one
/// bounds-checked index instead of a hash-map probe — the §E25 ~28 ns/msg
/// tax. A slot with `messages == 0` is an untouched link and is skipped
/// by the rollup.
#[derive(Debug, Clone, Copy, Default)]
struct LinkCounter {
    messages: u64,
    words: u64,
    cross: bool,
}

/// The recorder's link-counter store: the flat port-indexed slot space
/// split into fixed-size **segments** allocated on first touch.
///
/// A single flat `Vec` indexed by `min · max_ports + port` must grow to
/// the highest slot touched — at `D_12` (8.4 M nodes × 13 ports) that is
/// GB-scale before the run records a single event, even when the run
/// only ever touches a thin band of links. Segmenting the slot space
/// (the machine configures `seg_slots = shard_chunk · max_ports`, so one
/// segment holds exactly the links whose **min endpoint** lives in one
/// shard) makes allocation proportional to the shards actually traffic-
/// carrying, and makes each segment's first touch happen on the worker
/// that owns the shard — first-touch locality for the sharded engine.
///
/// Unconfigured (`seg_slots == 0`) the table degenerates to the old
/// single growing segment, which standalone recorders (no machine
/// attached) still use. Slot order is preserved either way: iterating
/// segments in order then slots in order visits the global slot space
/// ascending, so reports are bit-identical to the flat layout.
#[derive(Debug, Clone, Default)]
struct LinkTable {
    /// Slots per segment; `0` = unsegmented single-segment fallback.
    seg_slots: usize,
    /// `segs[s]` covers global slots `[s · seg_slots, (s+1) · seg_slots)`,
    /// grown lazily to the highest local slot touched.
    segs: Vec<Vec<LinkCounter>>,
}

impl LinkTable {
    /// Whether no counter has been touched yet (configuration window).
    fn is_untouched(&self) -> bool {
        self.segs.iter().all(|s| s.is_empty())
    }

    /// Sets the segment width. Only effective while the table is
    /// untouched — re-bucketing live counters is never worth it, and the
    /// totals are layout-independent anyway.
    fn configure(&mut self, seg_slots: usize) {
        if seg_slots > 0 && self.seg_slots != seg_slots && self.is_untouched() {
            self.seg_slots = seg_slots;
            self.segs.clear();
        }
    }

    /// Folds `messages`/`words` into `slot`'s counter, growing the
    /// owning segment (and the segment directory) on first touch.
    #[inline]
    fn add(&mut self, slot: usize, messages: u64, words: u64, cross: bool) {
        // `checked_div` gates the unsegmented fallback (`seg_slots == 0`).
        let (seg, local) = match slot.checked_div(self.seg_slots) {
            Some(seg) => (seg, slot % self.seg_slots),
            None => (0, slot),
        };
        if self.segs.len() <= seg {
            self.segs.resize(seg + 1, Vec::new());
        }
        let s = &mut self.segs[seg];
        if s.len() <= local {
            s.resize(local + 1, LinkCounter::default());
        }
        let c = &mut s[local];
        c.messages += messages;
        c.words += words;
        c.cross = cross;
    }

    /// Every allocated counter in ascending global-slot order.
    fn counters(&self) -> impl Iterator<Item = &LinkCounter> {
        self.segs.iter().flat_map(|s| s.iter())
    }

    /// Rolls the counters up into the cross-vs-cube utilization report.
    fn report(&self) -> LinkReport {
        let mut r = LinkReport::default();
        for c in self.counters().filter(|c| c.messages > 0) {
            let bucket = (63 - c.messages.leading_zeros()) as usize; // ⌊log₂⌋; messages ≥ 1
            if c.cross {
                r.cross_links += 1;
                r.cross_messages += c.messages;
                r.cross_words += c.words;
                if r.cross_hist.len() <= bucket {
                    r.cross_hist.resize(bucket + 1, 0);
                }
                r.cross_hist[bucket] += 1;
            } else {
                r.cube_links += 1;
                r.cube_messages += c.messages;
                r.cube_words += c.words;
                if r.cube_hist.len() <= bucket {
                    r.cube_hist.resize(bucket + 1, 0);
                }
                r.cube_hist[bucket] += 1;
            }
        }
        r
    }
}

/// Cross-edge vs. cube-edge utilization rollup of a recorded run's
/// per-link send counters (see [`Recorder::link_report`]).
///
/// The histograms bucket links by message count: `hist[b]` is the number
/// of links that carried `c` messages with `⌊log₂ c⌋ = b`. Dual-cube
/// cross edges are the scarce resource (one per node, versus `n−1`
/// cluster edges), so a skewed cross histogram is the first thing to
/// look at when a run is slower than its step counts predict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkReport {
    /// Distinct cross links that carried at least one message.
    pub cross_links: usize,
    /// Distinct cube (non-cross) links that carried at least one message.
    pub cube_links: usize,
    /// Total messages over cross links.
    pub cross_messages: u64,
    /// Total messages over cube links.
    pub cube_messages: u64,
    /// Total payload words over cross links.
    pub cross_words: u64,
    /// Total payload words over cube links.
    pub cube_words: u64,
    /// log₂ histogram of per-cross-link message counts.
    pub cross_hist: Vec<usize>,
    /// log₂ histogram of per-cube-link message counts.
    pub cube_hist: Vec<usize>,
}

/// Process-global count of live recorders; gates the worker pool's
/// per-dispatch clock reads so a recorder-free process never pays for
/// them.
static RECORDERS: AtomicUsize = AtomicUsize::new(0);

/// Whether any recorder is live in the process (so the pool should
/// measure dispatch timing).
pub(crate) fn pool_timing_active() -> bool {
    RECORDERS.load(Ordering::Relaxed) > 0
}

/// Serialises unit tests that create recorders or assert on the
/// process-global recorder count — they share one process and would
/// otherwise race.
#[cfg(test)]
pub(crate) fn test_recorder_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The event source installed on a [`Machine`](crate::Machine): stamps
/// events with a sequence number and a monotonic clock, forwards them to
/// its [`Sink`], and keeps the per-link send counters behind
/// [`Recorder::link_report`].
///
/// Cloning a recorder (e.g. by cloning a machine) shares the sink and
/// snapshots the link counters; both clones keep emitting into the same
/// stream.
pub struct Recorder {
    sink: SharedSink,
    origin: Instant,
    seq: u64,
    /// Segmented port-indexed per-link counters (see [`LinkTable`]);
    /// segments allocate on first touch, so the footprint follows the
    /// links the run actually uses, never `num_nodes · max_ports`.
    links: LinkTable,
}

impl Recorder {
    /// A recorder emitting into `sink`, with its clock origin at now.
    pub fn new(sink: SharedSink) -> Self {
        RECORDERS.fetch_add(1, Ordering::SeqCst);
        Recorder {
            sink,
            origin: Instant::now(),
            seq: 0,
            links: LinkTable::default(),
        }
    }

    /// Sets the link table's segment width (the machine passes
    /// `shard_chunk · max_ports`, aligning segment ownership with its
    /// shard map). Only effective before the first counter is touched.
    pub(crate) fn configure_links(&mut self, seg_slots: usize) {
        self.links.configure(seg_slots);
    }

    pub(crate) fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    pub(crate) fn send(&self, event: &Event) {
        self.sink
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(event);
    }

    /// Counts one delivered message of `words` payload on the link whose
    /// flat table slot is `slot` (the machine computes
    /// `min · max_ports + port_of(min, max)` from the endpoints, so each
    /// undirected link lands in exactly one slot regardless of message
    /// direction). The table grows geometrically via `Vec::resize`, so
    /// steady-state recording never reallocates once the run's highest
    /// slot has been touched.
    pub(crate) fn record_link(&mut self, slot: usize, words: u64, cross: bool) {
        self.links.add(slot, 1, words, cross);
    }

    /// Folds a whole batch of messages into one link slot at once — the
    /// flush path of the machine's deferred replay accounting (see
    /// `schedule::AcctPlan`).
    pub(crate) fn record_link_bulk(&mut self, slot: usize, messages: u64, words: u64, cross: bool) {
        self.links.add(slot, messages, words, cross);
    }

    /// Number of distinct links that carried at least one message.
    fn touched_links(&self) -> usize {
        self.links.counters().filter(|c| c.messages > 0).count()
    }

    /// Rolls the per-link counters up into the cross-vs-cube utilization
    /// report.
    pub fn link_report(&self) -> LinkReport {
        self.links.report()
    }

    /// [`Recorder::link_report`] with not-yet-flushed deferred counts
    /// overlaid: `feed` is handed a `add(slot, messages, words, cross)`
    /// callback and may fold in any pending per-link deltas; the report
    /// is computed from a temporary copy, leaving the live table (and
    /// the pending deltas) untouched. This keeps `Machine::link_report`
    /// a `&self` observation even while replay accounting is deferred.
    pub(crate) fn link_report_with<F>(&self, feed: F) -> LinkReport
    where
        F: FnOnce(&mut dyn FnMut(usize, u64, u64, bool)),
    {
        let mut table = self.links.clone();
        feed(&mut |slot, messages, words, cross| table.add(slot, messages, words, cross));
        table.report()
    }
}

impl Clone for Recorder {
    fn clone(&self) -> Self {
        RECORDERS.fetch_add(1, Ordering::SeqCst);
        Recorder {
            sink: Arc::clone(&self.sink),
            origin: self.origin,
            seq: self.seq,
            links: self.links.clone(),
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        RECORDERS.fetch_sub(1, Ordering::SeqCst);
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("seq", &self.seq)
            .field("links", &self.touched_links())
            .finish_non_exhaustive()
    }
}

/// Whether machines are created recording right now ([`with_recording`]).
static RECORDING_ACTIVE: AtomicBool = AtomicBool::new(false);

/// The sink new machines record into while [`with_recording`] is active.
static DEFAULT_SINK: Mutex<Option<SharedSink>> = Mutex::new(None);

/// Serialises [`with_recording`] sections. Deliberately its own lock
/// (not the executor's or the replay override's) so the three overrides
/// can nest; like them it is not reentrant — don't nest
/// [`with_recording`] inside itself, and take the exec override
/// outermost when combining.
static RECORDING_OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with every machine created inside recording into `sink`,
/// restoring the previous default afterwards (also on panic).
///
/// This is how code that builds machines internally (the dc-core
/// algorithms, the CLI) gets recorded without plumbing a sink through
/// every signature — mirroring
/// [`with_default_exec`](crate::with_default_exec) and
/// [`with_schedule_replay`](crate::with_schedule_replay). Each machine
/// gets its own [`Recorder`] (own sequence numbers and clock origin),
/// all feeding the shared sink in creation order.
pub fn with_recording<T>(sink: SharedSink, f: impl FnOnce() -> T) -> T {
    let _guard = RECORDING_OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    struct Restore(Option<SharedSink>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            RECORDING_ACTIVE.store(prev.is_some(), Ordering::SeqCst);
            *DEFAULT_SINK.lock().unwrap_or_else(|e| e.into_inner()) = prev;
        }
    }
    let _restore = {
        let mut slot = DEFAULT_SINK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = slot.replace(sink);
        RECORDING_ACTIVE.store(true, Ordering::SeqCst);
        Restore(prev)
    };
    f()
}

/// The recorder a newly created machine should install, if a
/// [`with_recording`] section is active.
pub(crate) fn default_recorder() -> Option<Recorder> {
    if !RECORDING_ACTIVE.load(Ordering::SeqCst) {
        return None;
    }
    DEFAULT_SINK
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .map(Recorder::new)
}

// --- JSON emission (hand-rolled; the build is offline and serde-free) ---

/// Appends `s` JSON-escaped (without surrounding quotes) to `out`.
fn push_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    push_escaped(out, val);
    out.push('"');
}

/// One event as a single-line JSON object — the [`JsonlSink`] wire
/// format. Phase events carry `"type":"phase"`, cycle events
/// `"type":"cycle"`; optional fields (`phase`, `key`, `pool`) are
/// `null` when absent.
pub fn event_to_json(event: &Event) -> String {
    let mut s = String::with_capacity(192);
    match event {
        Event::Phase(p) => {
            s.push('{');
            push_str_field(&mut s, "type", "phase");
            s.push_str(&format!(",\"seq\":{},\"index\":{},", p.seq, p.index));
            push_str_field(&mut s, "label", &p.label);
            s.push_str(&format!(",\"at_ns\":{}}}", p.at_ns));
        }
        Event::Cycle(c) => {
            s.push('{');
            push_str_field(&mut s, "type", "cycle");
            s.push_str(&format!(",\"seq\":{},", c.seq));
            push_str_field(&mut s, "kind", c.kind.as_str());
            s.push_str(&format!(",\"cycle\":{},\"steps\":{}", c.cycle, c.steps));
            match c.phase {
                Some(i) => s.push_str(&format!(",\"phase\":{i}")),
                None => s.push_str(",\"phase\":null"),
            }
            match c.key {
                Some(k) => {
                    s.push(',');
                    push_str_field(&mut s, "key", &k.to_string());
                }
                None => s.push_str(",\"key\":null"),
            }
            s.push(',');
            push_str_field(&mut s, "cache", c.cache.as_str());
            s.push_str(&format!(
                ",\"fault_epoch\":{},\"messages\":{},\"words\":{},\"dropped\":{},\"lanes\":{},\"ops\":{}",
                c.fault_epoch, c.messages, c.words, c.dropped, c.lanes, c.ops
            ));
            let backend = match c.backend {
                Backend::Sequential => "sequential".to_string(),
                Backend::Threaded { workers } => format!("threaded({workers})"),
            };
            s.push(',');
            push_str_field(&mut s, "backend", &backend);
            s.push_str(&format!(",\"at_ns\":{},\"dur_ns\":{}", c.at_ns, c.dur_ns));
            match c.pool {
                Some(p) => s.push_str(&format!(
                    ",\"pool\":{{\"dispatches\":{},\"queue_ns\":{},\"exec_ns\":{}}}}}",
                    p.dispatches, p.queue_ns, p.exec_ns
                )),
                None => s.push_str(",\"pool\":null}"),
            }
        }
    }
    s
}

/// Formats nanoseconds as fractional microseconds (Chrome trace `ts`
/// unit) without going through floats.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Converts a recorded event stream to Chrome/Perfetto trace-event JSON.
///
/// Phases become `"X"` (complete) duration events on tid 0 — each phase
/// runs until the next phase opens, the last until the final recorded
/// event. Cycles become `"i"` (instant) events on tid 1 whose `args`
/// carry the schedule key, cache disposition, fault epoch, message and
/// word counts, and the measured dispatch duration. The result opens
/// directly in `ui.perfetto.dev` (or `chrome://tracing`).
pub fn export_perfetto(events: &[Event]) -> String {
    let last_ns = events
        .iter()
        .map(|e| match e {
            Event::Phase(p) => p.at_ns,
            Event::Cycle(c) => c.at_ns,
        })
        .max()
        .unwrap_or(0);
    // End of phase i = start of the next phase event in the stream.
    let phase_starts: Vec<(usize, u64)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            Event::Phase(p) => Some((i, p.at_ns)),
            _ => None,
        })
        .collect();

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"phases\"}},\
         {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"cycles\"}}",
    );
    for (i, event) in events.iter().enumerate() {
        out.push(',');
        match event {
            Event::Phase(p) => {
                let end = phase_starts
                    .iter()
                    .find(|&&(pos, _)| pos > i)
                    .map(|&(_, ns)| ns)
                    .unwrap_or(last_ns);
                out.push_str("{\"ph\":\"X\",\"pid\":0,\"tid\":0,");
                push_str_field(&mut out, "name", &p.label);
                out.push_str(&format!(
                    ",\"cat\":\"phase\",\"ts\":{},\"dur\":{},\"args\":{{\"index\":{}}}}}",
                    us(p.at_ns),
                    us(end.saturating_sub(p.at_ns)),
                    p.index
                ));
            }
            Event::Cycle(c) => {
                out.push_str("{\"ph\":\"i\",\"pid\":0,\"tid\":1,\"s\":\"t\",");
                push_str_field(&mut out, "name", c.kind.as_str());
                out.push_str(&format!(
                    ",\"cat\":\"cycle\",\"ts\":{},\"args\":{{",
                    us(c.at_ns)
                ));
                out.push_str(&format!("\"cycle\":{},\"steps\":{},", c.cycle, c.steps));
                let key = c.key.map(|k| k.to_string()).unwrap_or_default();
                push_str_field(&mut out, "key", &key);
                out.push(',');
                push_str_field(&mut out, "cache", c.cache.as_str());
                out.push_str(&format!(
                    ",\"fault_epoch\":{},\"messages\":{},\"words\":{},\"dropped\":{},\
                     \"lanes\":{},\"ops\":{},\"dur_ns\":{}}}}}",
                    c.fault_epoch, c.messages, c.words, c.dropped, c.lanes, c.ops, c.dur_ns
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

/// A [`Metrics`] value as a single-line JSON object — the CLI's
/// `--metrics-json` output. Counters, the link-utilization rollup, and
/// the per-phase breakdown are all included.
pub fn metrics_json(m: &Metrics) -> String {
    let mut s = String::with_capacity(256);
    s.push_str(&format!(
        "{{\"comm_steps\":{},\"comp_steps\":{},\"messages\":{},\"message_words\":{},\
         \"element_ops\":{},\"schedule_hits\":{},\"schedule_misses\":{},\"retries\":{},\
         \"dropped_messages\":{},\"dilation_hops\":{}",
        m.comm_steps,
        m.comp_steps,
        m.messages,
        m.message_words,
        m.element_ops,
        m.schedule_hits,
        m.schedule_misses,
        m.retries,
        m.dropped_messages,
        m.dilation_hops
    ));
    s.push_str(&format!(
        ",\"link_util\":{{\"cross_messages\":{},\"cross_words\":{},\
         \"cube_messages\":{},\"cube_words\":{}}}",
        m.link_util.cross_messages,
        m.link_util.cross_words,
        m.link_util.cube_messages,
        m.link_util.cube_words
    ));
    s.push_str(",\"phases\":[");
    for (i, p) in m.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        push_str_field(&mut s, "label", &p.label);
        s.push_str(&format!(
            ",\"comm_steps\":{},\"comp_steps\":{},\"messages\":{},\
             \"message_words\":{},\"element_ops\":{}}}",
            p.comm_steps, p.comp_steps, p.messages, p.message_words, p.element_ops
        ));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(seq: u64) -> Event {
        Event::Cycle(CycleEvent {
            seq,
            kind: CycleKind::Comm,
            cycle: seq,
            steps: 1,
            phase: Some(0),
            key: Some(ScheduleKey::Dim(2)),
            cache: CacheStatus::Hit,
            fault_epoch: 0,
            messages: 8,
            words: 8,
            dropped: 0,
            lanes: 1,
            ops: 0,
            backend: Backend::Threaded { workers: 4 },
            at_ns: 100 * seq,
            dur_ns: 42,
            pool: Some(PoolDispatchStats {
                dispatches: 3,
                queue_ns: 10,
                exec_ns: 30,
            }),
        })
    }

    #[test]
    fn ring_keeps_newest() {
        let mut sink = MemorySink::ring(2);
        for i in 0..5 {
            sink.record(&cycle(i));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.evicted(), 3);
        let kept: Vec<u64> = sink
            .events()
            .iter()
            .map(|e| match e {
                Event::Cycle(c) => c.seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn jsonl_counts_lines_and_escapes() {
        let buf: Vec<u8> = Vec::new();
        let shared_buf = Arc::new(Mutex::new(buf));
        struct Tee(Arc<Mutex<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Tee(Arc::clone(&shared_buf)));
        sink.record(&Event::Phase(PhaseEvent {
            seq: 0,
            index: 0,
            label: "step \"1\": weird\nlabel".into(),
            at_ns: 5,
        }));
        sink.record(&cycle(1));
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(shared_buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\\\"1\\\""), "quotes must be escaped: {text}");
        assert!(text.contains("\\n"), "newlines must be escaped");
        assert!(text.contains("\"key\":\"dim(2)\""));
        assert!(text.contains("\"cache\":\"hit\""));
        assert!(text.contains("\"backend\":\"threaded(4)\""));
    }

    #[test]
    fn normalization_zeroes_only_timing() {
        let e = cycle(7);
        let n = e.normalized();
        match (&e, &n) {
            (Event::Cycle(orig), Event::Cycle(norm)) => {
                assert_eq!(norm.at_ns, 0);
                assert_eq!(norm.dur_ns, 0);
                assert_eq!(norm.pool, None);
                assert_eq!(norm.backend, Backend::Sequential);
                assert_eq!(norm.seq, orig.seq);
                assert_eq!(norm.messages, orig.messages);
                assert_eq!(norm.cache, orig.cache);
                assert_eq!(norm.key, orig.key);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn perfetto_phases_span_until_next_phase() {
        let events = vec![
            Event::Phase(PhaseEvent {
                seq: 0,
                index: 0,
                label: "a".into(),
                at_ns: 1_000,
            }),
            cycle(1),
            Event::Phase(PhaseEvent {
                seq: 2,
                index: 1,
                label: "b".into(),
                at_ns: 5_000,
            }),
            cycle(3),
        ];
        let json = export_perfetto(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Phase "a" spans 1µs → 5µs (dur 4µs); "b" runs to the last event.
        assert!(json.contains("\"name\":\"a\""), "{json}");
        assert!(json.contains("\"ts\":1.000,\"dur\":4.000"), "{json}");
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"cache\":\"hit\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
    }

    #[test]
    fn link_report_separates_cross_and_cube() {
        let _guard = test_recorder_guard();
        let sink: SharedSink = shared(MemorySink::new());
        let mut rec = Recorder::new(sink);
        // Slots are flat port-indexed link ids: both directions of an
        // undirected link map to the same slot (the machine's job).
        for _ in 0..4 {
            rec.record_link(3, 2, false);
        }
        rec.record_link(3, 2, false); // same undirected link, other direction
        rec.record_link(17, 1, true);
        let r = rec.link_report();
        assert_eq!(r.cube_links, 1);
        assert_eq!(r.cube_messages, 5);
        assert_eq!(r.cube_words, 10);
        assert_eq!(r.cross_links, 1);
        assert_eq!(r.cross_messages, 1);
        // 5 messages → bucket ⌊log₂5⌋ = 2; 1 message → bucket 0.
        assert_eq!(r.cube_hist, vec![0, 0, 1]);
        assert_eq!(r.cross_hist, vec![1]);
    }

    #[test]
    fn with_recording_scopes_and_restores() {
        let _guard = test_recorder_guard();
        assert!(default_recorder().is_none());
        let sink: SharedSink = shared(MemorySink::new());
        with_recording(Arc::clone(&sink), || {
            let rec = default_recorder();
            assert!(rec.is_some());
            drop(rec);
        });
        assert!(default_recorder().is_none());
        assert!(!pool_timing_active());
    }

    #[test]
    fn recorder_count_gates_pool_timing() {
        let _guard = test_recorder_guard();
        assert!(!pool_timing_active());
        let sink: SharedSink = shared(MemorySink::new());
        let rec = Recorder::new(Arc::clone(&sink));
        assert!(pool_timing_active());
        let rec2 = rec.clone();
        drop(rec);
        assert!(pool_timing_active(), "clone keeps the count live");
        drop(rec2);
        assert!(!pool_timing_active());
    }
}
