//! Host-side parallelism for large machines.
//!
//! The simulated network is synchronous, so within one cycle the per-node
//! work is embarrassingly parallel. [`Machine`](crate::Machine) runs under
//! an [`ExecMode`]: in `Parallel` mode every communication cycle splits
//! into a read-only *plan* phase parallelised over the states, a
//! sequential O(n) *validation* of the 1-port matching (so `SimError`
//! semantics and trace recording stay bit-identical to the sequential
//! backend), and a receiver-driven *deliver* phase in which each worker
//! mutates only its own node's state; `compute` and `setup` cycles are
//! chunked directly. The executors here are the primitives for those
//! phases, built on a lazily-initialised **persistent worker pool**
//! (the private `pool` module): long-lived threads parked on a condvar between cycles and
//! woken by an epoch-counter fork-join barrier, so a steady-state cycle
//! costs three wake/join rounds instead of three rounds of OS thread
//! spawns (rayon and crossbeam are not in the dependency set — see
//! DESIGN.md §6 for the pool architecture and the measured difference
//! against the earlier `std::thread::scope` backend).
//!
//! Determinism: workers receive disjoint `(node id, &mut state)` pairs, so
//! the result is identical to the sequential loop regardless of
//! scheduling. The determinism tests in `dc-core`'s
//! `tests/parallel_backend.rs` pin this at the algorithm level: parallel
//! and sequential runs must agree state-for-state and metric-for-metric.
//! Panics raised inside the per-node closures are propagated to the
//! caller (with their original payload) exactly as `std::thread::scope`
//! would, and leave the pool reusable.

#[allow(unsafe_code)]
mod pool;

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Per-thread `(dispatches, queue_ns, exec_ns)` accumulated by the
    /// pool's fork-join entry since the last [`take_dispatch_stats`].
    /// Thread-local because the dispatcher *is* the machine's thread —
    /// the machine drains its own cycle's dispatches at event emission.
    static DISPATCH_STATS: Cell<(u64, u64, u64)> = const { Cell::new((0, 0, 0)) };
}

/// Adds one fork-join dispatch's timing to the calling thread's
/// accumulator. Called by the pool only while a recorder is live (see
/// `obs::pool_timing_active`).
pub(crate) fn record_dispatch(queue_ns: u64, exec_ns: u64) {
    DISPATCH_STATS.with(|c| {
        let (d, q, e) = c.get();
        c.set((d + 1, q + queue_ns, e + exec_ns));
    });
}

/// Drains the calling thread's accumulated `(dispatches, queue_ns,
/// exec_ns)`, resetting it to zero.
pub(crate) fn take_dispatch_stats() -> (u64, u64, u64) {
    DISPATCH_STATS.with(|c| c.replace((0, 0, 0)))
}

/// Minimum number of nodes before threads are spawned; below this the
/// sequential loop wins on overhead. The default threshold of
/// [`ExecMode::Parallel`] and the cutoff of [`par_apply`].
pub const PAR_THRESHOLD: usize = 4096;

/// How a [`Machine`](crate::Machine) executes the per-node work of each
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Plain sequential loops — zero overhead, the right choice for small
    /// machines, doctests, and step-count experiments.
    Sequential,
    /// Split cycles over host cores whenever the machine has at least
    /// `threshold` nodes; smaller machines fall back to the sequential
    /// loops (one integer compare of overhead).
    Parallel {
        /// Minimum node count for which threads are spawned.
        threshold: usize,
    },
}

impl ExecMode {
    /// `Parallel` with the tuned default [`PAR_THRESHOLD`].
    pub fn parallel() -> Self {
        ExecMode::Parallel {
            threshold: PAR_THRESHOLD,
        }
    }

    /// Whether a machine of `len` nodes should use the threaded path.
    pub fn is_parallel_for(self, len: usize) -> bool {
        match self {
            ExecMode::Sequential => false,
            ExecMode::Parallel { threshold } => len >= threshold && available_threads() > 1,
        }
    }

    /// `Sequential` encodes as the sentinel; a `Parallel` threshold is its
    /// own encoding (clamped below the sentinel, which no real machine
    /// size reaches).
    fn encode(self) -> usize {
        match self {
            ExecMode::Sequential => SEQ_SENTINEL,
            ExecMode::Parallel { threshold } => threshold.min(SEQ_SENTINEL - 1),
        }
    }

    fn decode(v: usize) -> Self {
        if v == SEQ_SENTINEL {
            ExecMode::Sequential
        } else {
            ExecMode::Parallel { threshold: v }
        }
    }
}

const SEQ_SENTINEL: usize = usize::MAX;

/// The process-wide default [`ExecMode`], read by `ExecMode::default()`
/// (and therefore by every `Machine::new`). Starts as
/// `Parallel { threshold: PAR_THRESHOLD }`.
static DEFAULT_EXEC: AtomicUsize = AtomicUsize::new(PAR_THRESHOLD);

/// Serialises [`with_default_exec`] sections so concurrent tests cannot
/// interleave their overrides.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the process-wide default [`ExecMode`] set to `mode`,
/// restoring the previous default afterwards (also on panic).
///
/// This is the A/B lever for code that builds machines internally (the
/// algorithm entry points all call `Machine::new`): benches and
/// determinism tests wrap a whole algorithm run to force one backend
/// without threading an `ExecMode` parameter through every API.
/// Overlapping calls from different threads are serialised by an internal
/// lock; machines created *outside* any override always see whichever
/// default is current, and both backends produce identical results, so
/// this only ever affects wall-clock, never output.
pub fn with_default_exec<T>(mode: ExecMode, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEFAULT_EXEC.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(DEFAULT_EXEC.swap(mode.encode(), Ordering::SeqCst));
    f()
}

impl Default for ExecMode {
    /// The current process-wide default: initially
    /// [`ExecMode::parallel`] — large machines use the threaded backend
    /// automatically while small ones keep the zero-overhead sequential
    /// loops via the threshold cutoff — unless a
    /// [`with_default_exec`] override is active.
    fn default() -> Self {
        ExecMode::decode(DEFAULT_EXEC.load(Ordering::SeqCst))
    }
}

/// Applies `f(index, &mut item)` to every element, splitting the slice
/// over the available cores when it is at least [`PAR_THRESHOLD`] long.
pub fn par_apply<S: Send>(states: &mut [S], f: impl Fn(usize, &mut S) + Sync) {
    if states.len() < PAR_THRESHOLD {
        for (i, s) in states.iter_mut().enumerate() {
            f(i, s);
        }
        return;
    }
    par_apply_forced(states, &f);
}

/// [`par_apply`] without the length cutoff: always dispatches on the
/// persistent pool (unless the host has a single core or the slice is
/// empty). The machine applies its own [`ExecMode`] threshold before
/// calling this.
pub fn par_apply_forced<S: Send>(states: &mut [S], f: &(impl Fn(usize, &mut S) + Sync)) {
    let len = states.len();
    let threads = available_threads();
    if threads == 1 || len <= 1 {
        for (i, s) in states.iter_mut().enumerate() {
            f(i, s);
        }
        return;
    }
    pool::apply_chunked(threads, states, f);
}

/// Applies `f(index, &mut a[i], &b[i])` in parallel over two equal-length
/// slices — the *plan* phase's shape (write one plan slot per node while
/// reading that node's state).
pub fn par_zip_apply<A: Send, B: Sync>(
    a: &mut [A],
    b: &[B],
    f: &(impl Fn(usize, &mut A, &B) + Sync),
) {
    assert_eq!(a.len(), b.len(), "zipped slices must match");
    let len = a.len();
    let threads = available_threads();
    if threads == 1 || len <= 1 {
        for (i, (x, y)) in a.iter_mut().zip(b).enumerate() {
            f(i, x, y);
        }
        return;
    }
    pool::zip_apply_chunked(threads, a, b, f);
}

/// Applies `f(index, &mut a[i], &mut b[i])` in parallel over two
/// equal-length slices — the *deliver* phase's shape (each worker takes
/// node `i`'s inbox slot and mutates node `i`'s state, and nothing else).
pub fn par_zip_apply_mut<A: Send, B: Send>(
    a: &mut [A],
    b: &mut [B],
    f: &(impl Fn(usize, &mut A, &mut B) + Sync),
) {
    assert_eq!(a.len(), b.len(), "zipped slices must match");
    let len = a.len();
    let threads = available_threads();
    if threads == 1 || len <= 1 {
        for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            f(i, x, y);
        }
        return;
    }
    pool::zip_apply_mut_chunked(threads, a, b, f);
}

/// Folds `f(i, &mut acc)` over `0..len` with a chunk-local accumulator
/// per worker, then folds the per-chunk results **in slot order** — the
/// shape of the parallel validation passes (read shared plan slots /
/// atomic claim cells, reduce a lowest-index violation plus counters).
///
/// Determinism: the slot → index-range partition is fixed by `len` and
/// the worker count, and the final fold runs left-to-right over the slot
/// results on the calling thread. With an associative, commutative
/// `fold` whose `init` is an identity (sums, min-index reductions — the
/// only uses here), the result is bit-identical to the sequential loop
/// at **any** worker count.
pub fn par_for_reduce<R: Copy + Send + Sync>(
    len: usize,
    init: R,
    f: &(impl Fn(usize, &mut R) + Sync),
    fold: impl Fn(R, R) -> R,
) -> R {
    let threads = available_threads();
    if threads == 1 || len <= 1 {
        let mut acc = init;
        for i in 0..len {
            f(i, &mut acc);
        }
        return acc;
    }
    let mut out = [init; MAX_THREADS];
    pool::for_reduce_chunked(threads, len, init, f, &mut out[..threads]);
    out[..threads]
        .iter()
        .copied()
        .reduce(fold)
        .expect("threads >= 2")
}

/// [`par_for_reduce`] fused with a mutable pass over `items` (each index
/// may write only its own element) — the replay pass's shape: stage node
/// `i`'s inbound message into its inbox slot while reducing the deviation
/// check and word count. Same determinism contract as
/// [`par_for_reduce`].
pub fn par_apply_reduce<A: Send, R: Copy + Send + Sync>(
    items: &mut [A],
    init: R,
    f: &(impl Fn(usize, &mut A, &mut R) + Sync),
    fold: impl Fn(R, R) -> R,
) -> R {
    let len = items.len();
    let threads = available_threads();
    if threads == 1 || len <= 1 {
        let mut acc = init;
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x, &mut acc);
        }
        return acc;
    }
    let mut out = [init; MAX_THREADS];
    pool::apply_reduce_chunked(threads, items, init, f, &mut out[..threads]);
    out[..threads]
        .iter()
        .copied()
        .reduce(fold)
        .expect("threads >= 2")
}

/// [`par_apply_reduce`] over an element slice plus a **lane-strided**
/// companion buffer: element `i` owns `lanes[i*stride..(i+1)*stride]`,
/// and `f` receives both mutably along with the chunk-local accumulator.
/// The shape of the lane-batched staging/delivery passes: each receiver
/// writes its own lane window and nothing else. Same determinism
/// contract as [`par_for_reduce`].
pub fn par_lane_reduce<A: Send, V: Send, R: Copy + Send + Sync>(
    a: &mut [A],
    stride: usize,
    lanes: &mut [V],
    init: R,
    f: &(impl Fn(usize, &mut A, &mut [V], &mut R) + Sync),
    fold: impl Fn(R, R) -> R,
) -> R {
    let len = a.len();
    assert_eq!(lanes.len(), len * stride, "lane buffer must be len*stride");
    let threads = available_threads();
    if threads == 1 || len <= 1 {
        let mut acc = init;
        for (i, (x, w)) in a.iter_mut().zip(lanes.chunks_exact_mut(stride)).enumerate() {
            f(i, x, w, &mut acc);
        }
        return acc;
    }
    let mut out = [init; MAX_THREADS];
    pool::zip_strided_reduce_chunked(threads, a, stride, lanes, init, f, &mut out[..threads]);
    out[..threads]
        .iter()
        .copied()
        .reduce(fold)
        .expect("threads >= 2")
}

/// [`par_lane_reduce`] without the accumulator — the lane *delivery*
/// phase's shape (each worker folds node `i`'s lane window into node
/// `i`'s state, and nothing else).
pub fn par_lane_apply<A: Send, V: Send>(
    a: &mut [A],
    stride: usize,
    lanes: &mut [V],
    f: &(impl Fn(usize, &mut A, &mut [V]) + Sync),
) {
    par_lane_reduce(a, stride, lanes, (), &|i, x, w, _| f(i, x, w), |_, _| ());
}

/// [`par_lane_reduce`] with an explicit slot → element-range partition
/// instead of the uniform chunking: slot `k` owns
/// `a[bounds[k]..bounds[k+1]]` (and the stride-scaled window of
/// `lanes`). The machine passes shard-aligned bounds so each dispatch
/// slot touches whole shards — see `ShardMap::slot_bounds_into`. Bounds
/// ascend, so the slot-order fold is still a fold in ascending node
/// order: bit-identical to the sequential loop at any slot count.
pub(crate) fn par_lane_reduce_bounds<A: Send, V: Send, R: Copy + Send + Sync>(
    bounds: &[usize],
    a: &mut [A],
    stride: usize,
    lanes: &mut [V],
    init: R,
    f: &(impl Fn(usize, &mut A, &mut [V], &mut R) + Sync),
    fold: impl Fn(R, R) -> R,
) -> R {
    let slots = bounds.len() - 1;
    debug_assert!(slots <= MAX_THREADS);
    assert_eq!(
        lanes.len(),
        a.len() * stride,
        "lane buffer must be len*stride"
    );
    if available_threads() == 1 || slots <= 1 || a.len() <= 1 {
        let mut acc = init;
        for (i, (x, w)) in a.iter_mut().zip(lanes.chunks_exact_mut(stride)).enumerate() {
            f(i, x, w, &mut acc);
        }
        return acc;
    }
    let mut out = [init; MAX_THREADS];
    pool::zip_strided_reduce_bounds(bounds, a, stride, lanes, init, f, &mut out[..slots]);
    out[..slots]
        .iter()
        .copied()
        .reduce(fold)
        .expect("slots >= 2")
}

/// [`par_lane_reduce_bounds`] without the accumulator — the sharded
/// delivery phases' shape.
pub(crate) fn par_lane_apply_bounds<A: Send, V: Send>(
    bounds: &[usize],
    a: &mut [A],
    stride: usize,
    lanes: &mut [V],
    f: &(impl Fn(usize, &mut A, &mut [V]) + Sync),
) {
    par_lane_reduce_bounds(
        bounds,
        a,
        stride,
        lanes,
        (),
        &|i, x, w, _| f(i, x, w),
        |_, _| (),
    );
}

/// Chunk-granular sharded pass: slot `k` receives its whole bounds range
/// of `a` as one `&mut` slice plus exclusive ownership of `slabs[k]`,
/// folding into a per-slot accumulator reduced in slot order. The shape
/// of the sharded claim passes (reset + local min-merge + exchange-bin
/// staging, then the drain pass). Falls back to a sequential slot loop
/// on a single-threaded host, so the per-slot semantics are identical on
/// both backends.
pub(crate) fn par_slab_reduce<A: Send, B: Send, R: Copy + Send + Sync>(
    bounds: &[usize],
    a: &mut [A],
    slabs: &mut [B],
    init: R,
    f: &(impl Fn(usize, usize, &mut [A], &mut B, &mut R) + Sync),
    fold: impl Fn(R, R) -> R,
) -> R {
    let slots = bounds.len() - 1;
    debug_assert!(slots <= MAX_THREADS);
    debug_assert_eq!(slabs.len(), slots);
    if available_threads() == 1 || slots <= 1 {
        let mut acc = init;
        for (slot, slab) in slabs.iter_mut().enumerate() {
            let (start, end) = (bounds[slot], bounds[slot + 1]);
            f(slot, start, &mut a[start..end], slab, &mut acc);
        }
        return acc;
    }
    let mut out = [init; MAX_THREADS];
    pool::slab_reduce_bounds(bounds, a, slabs, init, f, &mut out[..slots]);
    out[..slots]
        .iter()
        .copied()
        .reduce(fold)
        .expect("slots >= 2")
}

/// Upper bound on worker threads, so huge hosts (or careless overrides)
/// don't oversubscribe.
const MAX_THREADS: usize = 32;

/// `0` means "derive from the host"; anything else pins the worker count.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the executor worker count to `n` (`0` restores the automatic
/// host-derived count). For tests and experiments: forcing `n > 1` on a
/// single-core host still drives the real cross-thread code paths
/// (oversubscribed), and because the backend is deterministic the results
/// are identical at any worker count — only wall-clock changes.
///
/// The change takes effect at the next parallel dispatch: the persistent
/// pool resizes itself (retiring parked workers or spawning new ones)
/// before publishing the next fork-join round, so the count may change
/// freely between cycles of a running machine.
pub fn set_worker_threads(n: usize) {
    WORKER_OVERRIDE.store(n.min(MAX_THREADS), Ordering::SeqCst);
}

/// Serialises tests that pin the worker override against tests that read
/// [`available_threads`] (unit tests share one process). Do **not** call
/// [`with_default_exec`] while holding the guard — same non-reentrant
/// lock.
#[cfg(test)]
pub(crate) fn test_override_guard() -> std::sync::MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Number of worker threads to use: the [`set_worker_threads`] override
/// if one is pinned, else the host's available parallelism (capped so
/// tiny CI machines don't oversubscribe). The host count is computed
/// once and cached — `available_parallelism` re-reads cgroup files on
/// every call on Linux, which is far too slow for a per-cycle check.
pub fn available_threads() -> usize {
    static HOST: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    match WORKER_OVERRIDE.load(Ordering::SeqCst) {
        0 => *HOST.get_or_init(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
                .min(MAX_THREADS)
        }),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_slice_runs_sequentially_and_correctly() {
        let mut v: Vec<u64> = (0..100).collect();
        par_apply(&mut v, |i, s| *s += i as u64);
        assert!(v.iter().enumerate().all(|(i, &s)| s == 2 * i as u64));
    }

    #[test]
    fn large_slice_matches_sequential_result() {
        let mut par: Vec<u64> = (0..(PAR_THRESHOLD * 3 + 17) as u64).collect();
        let mut seq = par.clone();
        par_apply(&mut par, |i, s| {
            *s = s.wrapping_mul(31).wrapping_add(i as u64)
        });
        for (i, s) in seq.iter_mut().enumerate() {
            *s = s.wrapping_mul(31).wrapping_add(i as u64);
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn indices_are_global_not_per_chunk() {
        let mut v = vec![0usize; PAR_THRESHOLD * 2];
        par_apply(&mut v, |i, s| *s = i);
        assert!(v.iter().enumerate().all(|(i, &s)| s == i));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn forced_handles_non_divisible_chunk_boundaries() {
        // len chosen so len % threads != 0 for every thread count 2..=32.
        let len = 31 * 29 * 2 + 1;
        let mut v = vec![0usize; len];
        par_apply_forced(&mut v, &|i, s| *s = i + 1);
        assert!(v.iter().enumerate().all(|(i, &s)| s == i + 1));
    }

    #[test]
    fn forced_handles_more_threads_than_items() {
        // threads > len: chunk size 1, one spawn per item.
        for len in 1..=5usize {
            let mut v = vec![0usize; len];
            par_apply_forced(&mut v, &|i, s| *s = i * 10);
            assert!(v.iter().enumerate().all(|(i, &s)| s == i * 10));
        }
        let mut empty: Vec<usize> = Vec::new();
        par_apply_forced(&mut empty, &|_, _| unreachable!());
    }

    #[test]
    fn zip_apply_reads_companion_slice() {
        let n = PAR_THRESHOLD + 7;
        let src: Vec<u64> = (0..n as u64).collect();
        let mut dst = vec![0u64; n];
        par_zip_apply(&mut dst, &src, &|i, d, s| *d = s * 2 + i as u64);
        assert!(dst.iter().enumerate().all(|(i, &d)| d == 3 * i as u64));
    }

    #[test]
    fn zip_apply_mut_moves_values_out_of_companion() {
        let n = PAR_THRESHOLD + 3;
        let mut inbox: Vec<Option<u64>> =
            (0..n as u64).map(|i| (i % 3 == 0).then_some(i)).collect();
        let mut states = vec![0u64; n];
        par_zip_apply_mut(&mut states, &mut inbox, &|_, s, slot| {
            if let Some(v) = slot.take() {
                *s = v + 1;
            }
        });
        for (i, &s) in states.iter().enumerate() {
            let expect = if i % 3 == 0 { i as u64 + 1 } else { 0 };
            assert_eq!(s, expect);
        }
        assert!(inbox.iter().all(|slot| slot.is_none()));
    }

    #[test]
    fn for_reduce_matches_sequential_fold_at_any_worker_count() {
        let _guard = test_override_guard();
        let len = PAR_THRESHOLD + 13;
        let expect: u64 = (0..len as u64).sum();
        for &workers in &[1usize, 2, 3, 5, 8] {
            set_worker_threads(workers);
            let got = par_for_reduce(len, 0u64, &|i, acc| *acc += i as u64, |a, b| a + b);
            assert_eq!(got, expect, "at {workers} workers");
        }
        set_worker_threads(0);
    }

    #[test]
    fn for_reduce_min_index_is_worker_count_invariant() {
        let _guard = test_override_guard();
        // "Violations" at a scatter of indices: the reduction must pick
        // the lowest regardless of chunk boundaries.
        let len = PAR_THRESHOLD * 2 + 7;
        let hot = [4097usize, 5000, 731, 8190, 731 + PAR_THRESHOLD];
        let min = |a: Option<usize>, b: Option<usize>| match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        };
        for &workers in &[1usize, 2, 4, 7] {
            set_worker_threads(workers);
            let got = par_for_reduce(
                len,
                None,
                &|i, acc: &mut Option<usize>| {
                    if hot.contains(&i) {
                        *acc = min(*acc, Some(i));
                    }
                },
                min,
            );
            assert_eq!(got, Some(731), "at {workers} workers");
        }
        set_worker_threads(0);
    }

    #[test]
    fn apply_reduce_mutates_and_reduces() {
        let _guard = test_override_guard();
        set_worker_threads(4);
        let n = PAR_THRESHOLD + 5;
        let mut v = vec![0u64; n];
        let sum = par_apply_reduce(
            &mut v,
            0u64,
            &|i, s, acc| {
                *s = i as u64 * 2;
                *acc += *s;
            },
            |a, b| a + b,
        );
        assert_eq!(sum, (0..n as u64).map(|i| i * 2).sum::<u64>());
        assert!(v.iter().enumerate().all(|(i, &s)| s == i as u64 * 2));
        set_worker_threads(0);
    }

    #[test]
    fn exec_mode_threshold_cutoff() {
        // Serialise with the worker-override test.
        let _guard = test_override_guard();
        assert!(!ExecMode::Sequential.is_parallel_for(1 << 20));
        let par = ExecMode::parallel();
        assert!(!par.is_parallel_for(PAR_THRESHOLD - 1));
        if available_threads() > 1 {
            assert!(par.is_parallel_for(PAR_THRESHOLD));
        }
    }

    #[test]
    fn worker_override_pins_and_restores_thread_count() {
        // Serialise with other tests that read `available_threads`.
        let _guard = test_override_guard();
        set_worker_threads(3);
        assert_eq!(available_threads(), 3);
        // The forced executor must spawn correctly even when the pinned
        // count exceeds the host's real core count (oversubscription).
        let mut v = vec![0usize; 100];
        par_apply_forced(&mut v, &|i, s| *s = i + 7);
        assert!(v.iter().enumerate().all(|(i, &s)| s == i + 7));
        set_worker_threads(0);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn default_exec_override_scopes_and_restores() {
        with_default_exec(ExecMode::Sequential, || {
            assert_eq!(ExecMode::default(), ExecMode::Sequential);
            // Nested machine sizes all fall back to sequential.
            assert!(!ExecMode::default().is_parallel_for(1 << 20));
        });
        with_default_exec(ExecMode::Parallel { threshold: 1 }, || {
            assert_eq!(ExecMode::default(), ExecMode::Parallel { threshold: 1 });
        });
        // Outside any override the initial default is back in force.
        assert_eq!(ExecMode::default(), ExecMode::parallel());
    }
}
