//! Host-side parallelism for large machines.
//!
//! The simulated network is synchronous, so within one cycle the per-node
//! work is embarrassingly parallel. For big instances (e.g. `D_8` with
//! 2^15 nodes) the wall-clock benches use this chunked crossbeam-scope
//! executor to spread node updates over host cores. (Rayon is not in the
//! approved dependency set; crossbeam's scoped threads give the same
//! fork-join structure for this fixed-shape workload — see DESIGN.md §6.)
//!
//! Determinism: `f` receives disjoint `(node id, &mut state)` pairs, so the
//! result is identical to the sequential loop regardless of scheduling.

use std::num::NonZeroUsize;

/// Minimum slice length before threads are spawned; below this the
/// sequential loop wins on overhead.
pub const PAR_THRESHOLD: usize = 4096;

/// Applies `f(index, &mut item)` to every element, splitting the slice over
/// the available cores when it is long enough.
pub fn par_apply<S: Send>(states: &mut [S], f: impl Fn(usize, &mut S) + Sync) {
    let len = states.len();
    let threads = available_threads();
    if len < PAR_THRESHOLD || threads == 1 {
        for (i, s) in states.iter_mut().enumerate() {
            f(i, s);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (c, slice) in states.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let base = c * chunk;
                for (i, s) in slice.iter_mut().enumerate() {
                    f(base + i, s);
                }
            });
        }
    })
    .expect("simulator worker thread panicked");
}

/// Number of worker threads to use (the host's available parallelism,
/// capped so tiny CI machines don't oversubscribe).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_slice_runs_sequentially_and_correctly() {
        let mut v: Vec<u64> = (0..100).collect();
        par_apply(&mut v, |i, s| *s += i as u64);
        assert!(v.iter().enumerate().all(|(i, &s)| s == 2 * i as u64));
    }

    #[test]
    fn large_slice_matches_sequential_result() {
        let mut par: Vec<u64> = (0..(PAR_THRESHOLD * 3 + 17) as u64).collect();
        let mut seq = par.clone();
        par_apply(&mut par, |i, s| {
            *s = s.wrapping_mul(31).wrapping_add(i as u64)
        });
        for (i, s) in seq.iter_mut().enumerate() {
            *s = s.wrapping_mul(31).wrapping_add(i as u64);
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn indices_are_global_not_per_chunk() {
        let mut v = vec![0usize; PAR_THRESHOLD * 2];
        par_apply(&mut v, |i, s| *s = i);
        assert!(v.iter().enumerate().all(|(i, &s)| s == i));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(available_threads() >= 1);
    }
}
