//! Randomised property tests of the topology layer at sizes the exhaustive
//! unit tests cannot reach (up to `D_6`, 2048 nodes).

use dc_topology::{graph, DualCube, Metacube, RecDualCube, Routed, Topology};
use proptest::prelude::*;

proptest! {
    /// Routing on big dual-cubes: valid paths whose length matches the
    /// closed-form distance, for arbitrary endpoint pairs.
    #[test]
    fn routes_match_distance_formula(n in 2u32..=6, seed: u64) {
        let d = DualCube::new(n);
        let nodes = d.num_nodes();
        let mut x = seed | 1;
        let mut next = move || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x as usize };
        for _ in 0..16 {
            let (u, v) = (next() % nodes, next() % nodes);
            let path = d.route(u, v);
            prop_assert_eq!(path[0], u);
            prop_assert_eq!(*path.last().unwrap(), v);
            prop_assert_eq!(path.len() as u32 - 1, d.distance_formula(u, v));
            for w in path.windows(2) {
                prop_assert!(d.is_edge(w[0], w[1]));
            }
        }
    }

    /// The recursive-presentation mapping stays a bijective isomorphism at
    /// sizes the exhaustive test skips.
    #[test]
    fn rec_mapping_round_trips_at_scale(n in 5u32..=7, seed: u64) {
        let d = DualCube::new(n);
        let rec = RecDualCube::new(n);
        let nodes = d.num_nodes();
        let mut x = seed | 1;
        let mut next = move || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x as usize };
        for _ in 0..32 {
            let u = next() % nodes;
            prop_assert_eq!(d.rec_to_std(d.std_to_rec(u)), u);
            // Edges map to edges in both directions.
            for v in d.neighbors(u) {
                prop_assert!(rec.is_edge(d.std_to_rec(u), d.std_to_rec(v)));
            }
            let r = d.std_to_rec(u);
            for s in rec.neighbors(r) {
                prop_assert!(d.is_edge(u, d.rec_to_std(s)));
            }
        }
    }

    /// Sampled distance spot-checks against BFS on D_5 (512 nodes) — the
    /// exhaustive census stops at D_4.
    #[test]
    fn distance_formula_sampled_on_d5(seed: u64) {
        let d = DualCube::new(5);
        let mut x = seed | 1;
        let mut next = move || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x as usize };
        let src = next() % d.num_nodes();
        let bfs = graph::bfs_distances(&d, src);
        for _ in 0..64 {
            let v = next() % d.num_nodes();
            prop_assert_eq!(d.distance_formula(src, v), bfs[v]);
        }
    }

    /// Metacube MC(1,m) stays isomorphic to D_(m+1) under random edge
    /// probes at m = 4 (512 nodes; the exhaustive test stops at m = 3).
    #[test]
    fn mc1_isomorphism_sampled(seed: u64) {
        let m = 4u32;
        let mc = Metacube::new(1, m);
        let d = DualCube::new(m + 1);
        let mut x = seed | 1;
        let mut next = move || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x as usize };
        for _ in 0..64 {
            let u = next() % mc.num_nodes();
            let du = mc.to_dual_cube_id(u);
            for v in mc.neighbors(u) {
                prop_assert!(d.is_edge(du, mc.to_dual_cube_id(v)));
            }
            prop_assert_eq!(mc.degree(u), d.degree(du));
        }
    }

    /// Hamiltonian cycles remain valid and complete up to D_7 (8192
    /// nodes), beyond the unit tests' n ≤ 6.
    #[test]
    fn hamiltonian_at_scale(n in 6u32..=7) {
        let rec = RecDualCube::new(n);
        let cycle = dc_topology::hamiltonian::hamiltonian_cycle_rec(n);
        prop_assert_eq!(cycle.len(), rec.num_nodes());
        let mut seen = vec![false; rec.num_nodes()];
        for i in 0..cycle.len() {
            prop_assert!(!seen[cycle[i]]);
            seen[cycle[i]] = true;
            prop_assert!(rec.is_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
    }
}

/// Satellite check for the non-allocating trait work: every closed-form
/// override of `degree` / `is_edge` / `max_ports` / `port_of` must agree
/// exactly with the answers the trait defaults derive from
/// `neighbors_into`, and ports must be a proper injective numbering
/// (`< max_ports()`, distinct per endpoint), exhaustively over small
/// instances of every topology in the crate.
#[test]
fn closed_form_overrides_agree_with_neighbor_defaults() {
    use dc_topology::{faulty::Faulty, CubeConnectedCycles, Hypercube};

    fn check(label: &str, t: &impl Topology) {
        check_inner(label, t, true)
    }

    // `Faulty` inherits its ports from the fault-free inner graph so a
    // link keeps its slot across fault sets — injective and bounded, but
    // not positional in the *survivor* adjacency once faults punch gaps.
    fn check_inherited(label: &str, t: &impl Topology) {
        check_inner(label, t, false)
    }

    fn check_inner(label: &str, t: &impl Topology, positional: bool) {
        let n = t.num_nodes();
        let mut max_degree = 0;
        for u in 0..n {
            let nbrs = t.neighbors(u);
            max_degree = max_degree.max(nbrs.len());
            assert_eq!(t.degree(u), nbrs.len(), "{label}: degree({u})");
            let mut ports = Vec::new();
            for (pos, &v) in nbrs.iter().enumerate() {
                assert!(t.is_edge(u, v), "{label}: is_edge({u}, {v})");
                let p = t
                    .port_of(u, v)
                    .unwrap_or_else(|| panic!("{label}: port_of({u}, {v}) is None on an edge"));
                assert!(p < t.max_ports(), "{label}: port {p} ≥ max_ports");
                if positional {
                    assert_eq!(
                        p as usize, pos,
                        "{label}: port_of({u}, {v}) disagrees with neighbour order"
                    );
                }
                ports.push(p);
            }
            ports.sort_unstable();
            ports.dedup();
            assert_eq!(ports.len(), nbrs.len(), "{label}: duplicate ports at {u}");
            for v in 0..n {
                if !nbrs.contains(&v) {
                    assert!(!t.is_edge(u, v), "{label}: phantom edge ({u}, {v})");
                    assert_eq!(
                        t.port_of(u, v),
                        None,
                        "{label}: port on non-edge ({u}, {v})"
                    );
                }
            }
        }
        assert!(
            max_degree as u32 <= t.max_ports(),
            "{label}: max_ports below max degree"
        );
    }

    for m in 1..=4 {
        check("hypercube", &Hypercube::new(m));
    }
    for n in 1..=3 {
        check("dual-cube", &DualCube::new(n));
        check("rec-dual-cube", &RecDualCube::new(n));
    }
    check("metacube k=0", &Metacube::new(0, 3));
    check("metacube k=1", &Metacube::new(1, 3));
    check("metacube k=2", &Metacube::new(2, 2));
    for d in 3..=4 {
        check("ccc", &CubeConnectedCycles::new(d));
    }
    let d2 = DualCube::new(2);
    check("faulty fault-free", &Faulty::new(d2, &[]));
    check_inherited("faulty nodes", &Faulty::new(d2, &[1, 5]));
    check_inherited(
        "faulty links",
        &Faulty::with_link_faults(d2, &[3], &[(0, 1)]),
    );
}
