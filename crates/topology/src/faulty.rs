//! Fault injection: a topology with failed nodes masked out.
//!
//! The dual-cube literature the paper builds on (its reference \[4\] is Lee
//! & Hayes' fault-tolerant hypercube communication scheme, and the
//! authors' own follow-up work covers fault-tolerant routing in
//! dual-cubes) studies behaviour under node failures. [`Faulty`] wraps any
//! [`Topology`] and removes a set of nodes: failed nodes keep their ids
//! (so the address arithmetic of the healthy nodes is undisturbed) but
//! report no neighbours and disappear from everyone's adjacency.
//!
//! With fewer than κ(G) failures the surviving graph stays connected
//! (Menger; κ is computed exactly in [`crate::connectivity`]) — measured
//! over random fault sets in experiment E15, together with the routing
//! *dilation* failures force on shortest paths.

use crate::traits::{NodeId, Topology};

/// A topology with a fault set removed. Node ids are preserved; faulty
/// nodes are isolated (degree 0).
#[derive(Debug, Clone)]
pub struct Faulty<T> {
    inner: T,
    failed: Vec<bool>,
    num_failed: usize,
    /// Surviving degree of every node, precomputed at construction (the
    /// fault set is immutable) so `degree` needs no neighbour sweep.
    degrees: Vec<usize>,
    /// Surviving edge count, by the same precomputation.
    num_edges: usize,
}

impl<T: Topology> Faulty<T> {
    /// Marks `faults` as failed in `inner`. Duplicate ids are accepted;
    /// out-of-range ids panic.
    pub fn new(inner: T, faults: &[NodeId]) -> Self {
        let mut failed = vec![false; inner.num_nodes()];
        for &f in faults {
            assert!(f < failed.len(), "fault id {f} out of range");
            failed[f] = true;
        }
        let num_failed = failed.iter().filter(|&&b| b).count();
        let mut degrees = vec![0; failed.len()];
        let mut scratch = Vec::new();
        for (u, d) in degrees.iter_mut().enumerate() {
            if !failed[u] {
                inner.neighbors_into(u, &mut scratch);
                *d = scratch.iter().filter(|&&v| !failed[v]).count();
            }
        }
        let degree_sum: usize = degrees.iter().sum();
        debug_assert!(degree_sum.is_multiple_of(2), "handshake lemma");
        Faulty {
            inner,
            failed,
            num_failed,
            degrees,
            num_edges: degree_sum / 2,
        }
    }

    /// The wrapped fault-free topology.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Whether node `u` has failed.
    #[inline]
    pub fn is_failed(&self, u: NodeId) -> bool {
        self.failed[u]
    }

    /// Number of failed nodes.
    pub fn num_failed(&self) -> usize {
        self.num_failed
    }

    /// Ids of the surviving nodes.
    pub fn survivors(&self) -> Vec<NodeId> {
        (0..self.failed.len())
            .filter(|&u| !self.failed[u])
            .collect()
    }

    /// Whether every pair of surviving nodes can still reach each other.
    pub fn survivors_connected(&self) -> bool {
        let survivors = self.survivors();
        let Some(&start) = survivors.first() else {
            return true;
        };
        let dist = crate::graph::bfs_distances(self, start);
        survivors.iter().all(|&u| dist[u] != u32::MAX)
    }
}

impl<T: Topology> Topology for Faulty<T> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        if self.failed[u] {
            out.clear();
            return;
        }
        self.inner.neighbors_into(u, out);
        out.retain(|&v| !self.failed[v]);
    }

    // Allocating-defaults audit (all `Topology` impls): Hypercube,
    // DualCube, RecDualCube, Metacube, and CubeConnectedCycles override
    // `degree`/`is_edge`/`num_edges` with closed forms. `Faulty` has no
    // closed form (both depend on the fault set) but the fault set is
    // frozen at construction, so all three are precomputed there; the
    // `faulty_overrides_match_default_answers` test pins them to the
    // neighbour-sweep defaults exhaustively.

    fn degree(&self, u: NodeId) -> usize {
        self.degrees[u]
    }

    fn is_edge(&self, u: NodeId, v: NodeId) -> bool {
        !self.failed[u] && !self.failed[v] && self.inner.is_edge(u, v)
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn name(&self) -> String {
        format!("{} − {} faults", self.inner.name(), self.num_failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::dualcube::DualCube;
    use crate::graph;
    use crate::hypercube::Hypercube;

    #[test]
    fn failed_nodes_are_isolated() {
        let f = Faulty::new(Hypercube::new(3), &[2, 5]);
        assert!(f.neighbors(2).is_empty());
        assert!(!f.neighbors(0).contains(&2));
        assert!(!f.is_edge(0, 2));
        assert!(f.is_edge(0, 1));
        assert_eq!(f.num_failed(), 2);
        assert_eq!(f.survivors().len(), 6);
    }

    #[test]
    fn graph_contract_still_holds() {
        let f = Faulty::new(DualCube::new(2), &[3]);
        assert!(graph::check_simple_undirected(&f).is_empty());
    }

    #[test]
    fn fewer_than_kappa_faults_keep_dual_cube_connected() {
        // κ(D_3) = 3 (verified in connectivity tests): every fault set of
        // size ≤ 2 leaves the survivors connected. Exhaustive over all
        // pairs.
        let d = DualCube::new(3);
        assert_eq!(vertex_connectivity(&d), 3);
        for a in 0..d.num_nodes() {
            for b in (a + 1)..d.num_nodes() {
                let f = Faulty::new(d, &[a, b]);
                assert!(
                    f.survivors_connected(),
                    "faults {{{a},{b}}} disconnected D_3"
                );
            }
        }
    }

    #[test]
    fn kappa_faults_can_disconnect() {
        // Failing all n neighbours of a node isolates it — the tightness
        // of the κ = n guarantee.
        let d = DualCube::new(2);
        let victim = 0usize;
        let nbrs = d.neighbors(victim);
        let f = Faulty::new(d, &nbrs);
        assert!(!f.survivors_connected());
        assert!(f.neighbors(victim).is_empty());
    }

    #[test]
    fn routing_around_faults_with_bfs() {
        // Dimension-ordered routing may die with the faults, but BFS on
        // the survivor graph still finds paths (possibly dilated).
        let d = DualCube::new(3);
        let f = Faulty::new(d, &[1, 9]);
        let path = graph::shortest_path(&f, 0, 0b01011);
        assert!(path.len() >= 2);
        for w in path.windows(2) {
            assert!(f.is_edge(w[0], w[1]));
        }
        assert!(path.iter().all(|&u| !f.is_failed(u)));
    }

    /// The precomputed `degree`/`num_edges`/`is_edge` overrides must give
    /// exactly the answers the `Topology` trait defaults derive from
    /// `neighbors_into` — exhaustively, over every node (and every node
    /// pair) of assorted topologies and fault sets, including the empty
    /// and the everyone-failed set.
    #[test]
    fn faulty_overrides_match_default_answers() {
        fn check(label: &str, f: &Faulty<impl Topology>) {
            let n = f.num_nodes();
            let mut degree_sum = 0;
            for u in 0..n {
                let nbrs = f.neighbors(u);
                assert_eq!(f.degree(u), nbrs.len(), "{label}: degree({u})");
                degree_sum += nbrs.len();
                for v in 0..n {
                    assert_eq!(
                        f.is_edge(u, v),
                        nbrs.contains(&v),
                        "{label}: is_edge({u}, {v})"
                    );
                }
            }
            assert_eq!(f.num_edges(), degree_sum / 2, "{label}: num_edges");
        }
        let h = Hypercube::new(4);
        let d = DualCube::new(2);
        check("H4 fault-free", &Faulty::new(h, &[]));
        check("H4 two faults", &Faulty::new(h, &[0, 9]));
        check(
            "H4 all failed",
            &Faulty::new(h, &(0..16).collect::<Vec<_>>()),
        );
        check("D2 fault-free", &Faulty::new(d, &[]));
        check("D2 three faults", &Faulty::new(d, &[1, 2, 7]));
        // A fault set isolating a node (its whole neighbourhood fails).
        check("D2 isolated 0", &Faulty::new(d, &d.neighbors(0)));
    }

    #[test]
    fn duplicate_faults_counted_once() {
        let f = Faulty::new(Hypercube::new(2), &[1, 1, 1]);
        assert_eq!(f.num_failed(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fault_rejected() {
        Faulty::new(Hypercube::new(2), &[99]);
    }
}
