//! Fault injection: a topology with failed nodes and links masked out.
//!
//! The dual-cube literature the paper builds on (its reference \[4\] is Lee
//! & Hayes' fault-tolerant hypercube communication scheme, and the
//! authors' own follow-up work covers fault-tolerant routing in
//! dual-cubes) studies behaviour under node *and* link failures.
//! [`Faulty`] wraps any [`Topology`] and removes a set of nodes and/or
//! edges: failed nodes keep their ids (so the address arithmetic of the
//! healthy nodes is undisturbed) but report no neighbours and disappear
//! from everyone's adjacency; failed links vanish from both endpoints'
//! adjacency while the endpoints stay alive.
//!
//! With fewer than κ(G) node failures the surviving graph stays connected
//! (Menger; κ is computed exactly in [`crate::connectivity`]) — measured
//! over random fault sets in experiment E15, together with the routing
//! *dilation* failures force on shortest paths.

use crate::traits::{NodeId, Topology};

/// A topology with a fault set removed. Node ids are preserved; faulty
/// nodes are isolated (degree 0); faulty links are absent from both
/// endpoints' adjacency.
#[derive(Debug, Clone)]
pub struct Faulty<T> {
    inner: T,
    failed: Vec<bool>,
    num_failed: usize,
    /// Failed links, endpoint-normalised (`a < b`), deduplicated. Small
    /// in every studied scenario; membership is a linear scan.
    dead_links: Vec<(NodeId, NodeId)>,
    /// Surviving degree of every node, precomputed at construction (the
    /// fault set is immutable) so `degree` needs no neighbour sweep.
    degrees: Vec<usize>,
    /// Surviving edge count, by the same precomputation.
    num_edges: usize,
}

impl<T: Topology> Faulty<T> {
    /// Marks `faults` as failed in `inner`. Duplicate ids are accepted;
    /// out-of-range ids panic.
    pub fn new(inner: T, faults: &[NodeId]) -> Self {
        Faulty::with_link_faults(inner, faults, &[])
    }

    /// Marks `faults` as failed nodes and `link_faults` as failed edges.
    /// Link endpoints may be given in either order; duplicates (either
    /// orientation) are accepted, as are links incident to failed nodes
    /// (already absent; harmless). Out-of-range ids, self-loops, and
    /// pairs that are not edges of `inner` panic.
    pub fn with_link_faults(inner: T, faults: &[NodeId], link_faults: &[(NodeId, NodeId)]) -> Self {
        let n = inner.num_nodes();
        let mut failed = vec![false; n];
        for &f in faults {
            assert!(f < n, "fault id {f} out of range");
            failed[f] = true;
        }
        let num_failed = failed.iter().filter(|&&b| b).count();
        let mut dead_links: Vec<(NodeId, NodeId)> = Vec::with_capacity(link_faults.len());
        for &(a, b) in link_faults {
            assert!(a < n && b < n, "link fault ({a}, {b}) out of range");
            assert_ne!(a, b, "link fault ({a}, {b}) is a self-loop");
            assert!(
                inner.is_edge(a, b),
                "link fault ({a}, {b}) is not an edge of {}",
                inner.name()
            );
            let key = (a.min(b), a.max(b));
            if !dead_links.contains(&key) {
                dead_links.push(key);
            }
        }
        let mut me = Faulty {
            inner,
            failed,
            num_failed,
            dead_links,
            degrees: vec![0; n],
            num_edges: 0,
        };
        let mut scratch = Vec::new();
        let mut degree_sum = 0;
        for u in 0..n {
            // Route through `neighbors_into` (which applies both fault
            // kinds) so the precomputed answers match the trait defaults
            // by construction.
            me.neighbors_into(u, &mut scratch);
            me.degrees[u] = scratch.len();
            degree_sum += scratch.len();
        }
        debug_assert!(degree_sum.is_multiple_of(2), "handshake lemma");
        me.num_edges = degree_sum / 2;
        me
    }

    /// The wrapped fault-free topology.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Whether node `u` has failed.
    #[inline]
    pub fn is_failed(&self, u: NodeId) -> bool {
        self.failed[u]
    }

    /// Whether the link `{u, v}` was explicitly failed (regardless of
    /// orientation; false for links merely incident to failed nodes).
    #[inline]
    pub fn is_link_failed(&self, u: NodeId, v: NodeId) -> bool {
        !self.dead_links.is_empty() && self.dead_links.contains(&(u.min(v), u.max(v)))
    }

    /// Number of failed nodes.
    pub fn num_failed(&self) -> usize {
        self.num_failed
    }

    /// The failed links, endpoint-normalised (`a < b`), deduplicated.
    pub fn failed_links(&self) -> &[(NodeId, NodeId)] {
        &self.dead_links
    }

    /// Whether the fault set killed **every** node. In this degenerate
    /// case there are no survivors, so [`Faulty::survivors_connected`]
    /// is vacuously true — callers sampling fault sets should check this
    /// signal rather than read connectedness into an empty graph.
    pub fn all_failed(&self) -> bool {
        self.num_failed == self.failed.len()
    }

    /// Ids of the surviving nodes.
    pub fn survivors(&self) -> Vec<NodeId> {
        (0..self.failed.len())
            .filter(|&u| !self.failed[u])
            .collect()
    }

    /// Whether every pair of surviving nodes can still reach each other.
    ///
    /// **Vacuously true when there are no survivors** (the BFS has
    /// nothing to disconnect): a caller that may have failed every node
    /// must consult [`Faulty::all_failed`] first — experiment E15 asserts
    /// on it rather than sampling around the degenerate case.
    pub fn survivors_connected(&self) -> bool {
        let survivors = self.survivors();
        let Some(&start) = survivors.first() else {
            return true;
        };
        let dist = crate::graph::bfs_distances(self, start);
        survivors.iter().all(|&u| dist[u] != u32::MAX)
    }
}

impl<T: Topology> Topology for Faulty<T> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        if self.failed[u] {
            out.clear();
            return;
        }
        self.inner.neighbors_into(u, out);
        out.retain(|&v| !self.failed[v] && !self.is_link_failed(u, v));
    }

    // Allocating-defaults audit (all `Topology` impls): Hypercube,
    // DualCube, RecDualCube, Metacube, and CubeConnectedCycles override
    // `degree`/`is_edge`/`num_edges` with closed forms. `Faulty` has no
    // closed form (both depend on the fault set) but the fault set is
    // frozen at construction, so all three are precomputed there; the
    // `faulty_overrides_match_default_answers` test pins them to the
    // neighbour-sweep defaults exhaustively.

    fn degree(&self, u: NodeId) -> usize {
        self.degrees[u]
    }

    fn is_edge(&self, u: NodeId, v: NodeId) -> bool {
        !self.failed[u] && !self.failed[v] && !self.is_link_failed(u, v) && self.inner.is_edge(u, v)
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn is_cross_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Fault status does not change an edge's class; delegate so a
        // faulty dual-cube still classifies its surviving cross links.
        self.inner.is_cross_edge(u, v)
    }

    fn max_ports(&self) -> u32 {
        // Ports are inherited from the fault-free graph so a link keeps
        // its slot across fault sets; faults only remove edges, never
        // widen the port space.
        self.inner.max_ports()
    }

    fn port_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if self.is_edge(u, v) {
            self.inner.port_of(u, v)
        } else {
            None
        }
    }

    fn name(&self) -> String {
        if self.dead_links.is_empty() {
            format!("{} − {} faults", self.inner.name(), self.num_failed)
        } else {
            format!(
                "{} − {} node / {} link faults",
                self.inner.name(),
                self.num_failed,
                self.dead_links.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::dualcube::DualCube;
    use crate::graph;
    use crate::hypercube::Hypercube;

    #[test]
    fn failed_nodes_are_isolated() {
        let f = Faulty::new(Hypercube::new(3), &[2, 5]);
        assert!(f.neighbors(2).is_empty());
        assert!(!f.neighbors(0).contains(&2));
        assert!(!f.is_edge(0, 2));
        assert!(f.is_edge(0, 1));
        assert_eq!(f.num_failed(), 2);
        assert_eq!(f.survivors().len(), 6);
    }

    #[test]
    fn graph_contract_still_holds() {
        let f = Faulty::new(DualCube::new(2), &[3]);
        assert!(graph::check_simple_undirected(&f).is_empty());
    }

    #[test]
    fn fewer_than_kappa_faults_keep_dual_cube_connected() {
        // κ(D_3) = 3 (verified in connectivity tests): every fault set of
        // size ≤ 2 leaves the survivors connected. Exhaustive over all
        // pairs.
        let d = DualCube::new(3);
        assert_eq!(vertex_connectivity(&d), 3);
        for a in 0..d.num_nodes() {
            for b in (a + 1)..d.num_nodes() {
                let f = Faulty::new(d, &[a, b]);
                assert!(
                    f.survivors_connected(),
                    "faults {{{a},{b}}} disconnected D_3"
                );
            }
        }
    }

    #[test]
    fn kappa_faults_can_disconnect() {
        // Failing all n neighbours of a node isolates it — the tightness
        // of the κ = n guarantee.
        let d = DualCube::new(2);
        let victim = 0usize;
        let nbrs = d.neighbors(victim);
        let f = Faulty::new(d, &nbrs);
        assert!(!f.survivors_connected());
        assert!(f.neighbors(victim).is_empty());
    }

    #[test]
    fn routing_around_faults_with_bfs() {
        // Dimension-ordered routing may die with the faults, but BFS on
        // the survivor graph still finds paths (possibly dilated).
        let d = DualCube::new(3);
        let f = Faulty::new(d, &[1, 9]);
        let path = graph::shortest_path(&f, 0, 0b01011);
        assert!(path.len() >= 2);
        for w in path.windows(2) {
            assert!(f.is_edge(w[0], w[1]));
        }
        assert!(path.iter().all(|&u| !f.is_failed(u)));
    }

    /// The precomputed `degree`/`num_edges`/`is_edge` overrides must give
    /// exactly the answers the `Topology` trait defaults derive from
    /// `neighbors_into` — exhaustively, over every node (and every node
    /// pair) of assorted topologies and fault sets, including the empty
    /// and the everyone-failed set.
    #[test]
    fn faulty_overrides_match_default_answers() {
        fn check(label: &str, f: &Faulty<impl Topology>) {
            let n = f.num_nodes();
            let mut degree_sum = 0;
            for u in 0..n {
                let nbrs = f.neighbors(u);
                assert_eq!(f.degree(u), nbrs.len(), "{label}: degree({u})");
                degree_sum += nbrs.len();
                for v in 0..n {
                    assert_eq!(
                        f.is_edge(u, v),
                        nbrs.contains(&v),
                        "{label}: is_edge({u}, {v})"
                    );
                }
            }
            assert_eq!(f.num_edges(), degree_sum / 2, "{label}: num_edges");
        }
        let h = Hypercube::new(4);
        let d = DualCube::new(2);
        check("H4 fault-free", &Faulty::new(h, &[]));
        check("H4 two faults", &Faulty::new(h, &[0, 9]));
        check(
            "H4 all failed",
            &Faulty::new(h, &(0..16).collect::<Vec<_>>()),
        );
        check("D2 fault-free", &Faulty::new(d, &[]));
        check("D2 three faults", &Faulty::new(d, &[1, 2, 7]));
        // A fault set isolating a node (its whole neighbourhood fails).
        check("D2 isolated 0", &Faulty::new(d, &d.neighbors(0)));
    }

    #[test]
    fn duplicate_faults_counted_once() {
        let f = Faulty::new(Hypercube::new(2), &[1, 1, 1]);
        assert_eq!(f.num_failed(), 1);
    }

    #[test]
    fn link_faults_cut_the_edge_but_not_the_endpoints() {
        let h = Hypercube::new(3);
        let full_edges = h.num_edges();
        // Either endpoint order must name the same edge; duplicates fold.
        let f = Faulty::with_link_faults(h, &[], &[(0, 1), (1, 0), (4, 0)]);
        assert_eq!(f.failed_links(), &[(0, 1), (0, 4)]);
        assert!(!f.is_edge(0, 1));
        assert!(!f.is_edge(1, 0));
        assert!(!f.is_edge(0, 4));
        assert!(f.is_edge(0, 2), "other edges untouched");
        assert!(f.is_link_failed(1, 0));
        assert!(!f.is_link_failed(0, 2));
        // Endpoints live: degree reduced, not zeroed.
        assert_eq!(f.degree(0), 1);
        assert_eq!(f.degree(1), 2);
        assert_eq!(f.num_edges(), full_edges - 2);
        assert_eq!(f.num_failed(), 0);
        assert!(!f.neighbors(0).contains(&1));
        assert!(f.neighbors(0).contains(&2));
        assert!(graph::check_simple_undirected(&f).is_empty());
        assert!(f.name().contains("2 link faults"));
    }

    #[test]
    fn link_faults_combine_with_node_faults() {
        let d = DualCube::new(2);
        let f = Faulty::with_link_faults(d, &[3], &[(0, 1)]);
        assert!(f.neighbors(3).is_empty());
        assert!(!f.is_edge(0, 1));
        // Precomputed overrides still match the trait defaults.
        for u in 0..f.num_nodes() {
            let nbrs = f.neighbors(u);
            assert_eq!(f.degree(u), nbrs.len());
            for v in 0..f.num_nodes() {
                assert_eq!(f.is_edge(u, v), nbrs.contains(&v), "is_edge({u}, {v})");
            }
        }
    }

    #[test]
    fn enough_link_faults_disconnect_survivors() {
        // Cutting every edge at node 0 isolates it without killing it.
        let d = DualCube::new(2);
        let cuts: Vec<_> = d.neighbors(0).into_iter().map(|v| (0, v)).collect();
        let f = Faulty::with_link_faults(d, &[], &cuts);
        assert_eq!(f.degree(0), 0);
        assert!(!f.is_failed(0), "node 0 is alive, just cut off");
        assert!(!f.survivors_connected());
    }

    /// The satellite bugfix: an all-nodes-failed set used to be silently
    /// accepted with `survivors_connected() == true` (vacuous BFS). The
    /// explicit signal lets callers assert instead of sampling around it.
    #[test]
    fn all_failed_is_signalled_not_silently_connected() {
        let h = Hypercube::new(2);
        let everyone: Vec<_> = (0..h.num_nodes()).collect();
        let f = Faulty::new(h, &everyone);
        assert!(f.all_failed());
        assert!(f.survivors().is_empty());
        // The vacuous truth is documented and kept (an empty graph is
        // trivially connected) — the signal is how callers distinguish it.
        assert!(f.survivors_connected());
        assert!(!Faulty::new(Hypercube::new(2), &[0]).all_failed());
        assert!(!Faulty::new(Hypercube::new(2), &[]).all_failed());
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn non_edge_link_fault_rejected() {
        // 0 and 3 differ in two bits: not a hypercube edge.
        Faulty::with_link_faults(Hypercube::new(2), &[], &[(0, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_link_fault_rejected() {
        Faulty::with_link_faults(Hypercube::new(2), &[], &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fault_rejected() {
        Faulty::new(Hypercube::new(2), &[99]);
    }
}
