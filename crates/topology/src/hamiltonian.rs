//! A Hamiltonian cycle in the dual-cube, constructed from the recursive
//! presentation — i.e. a **dilation-1 ring embedding**, one of the
//! hypercube-like properties ("recursive construction, …") the paper
//! credits the dual-cube with in Sections 1–2.
//!
//! Construction (recursive, over recursive-presentation ids):
//!
//! * **Base `D_2`** is 2-regular and connected — it *is* an 8-cycle;
//!   walk it directly.
//! * **Step `D_n` (n ≥ 3):** place the same `D_(n−1)` cycle in all four
//!   copies (the copies are translates of each other). Pick on the small
//!   cycle an edge `e1` whose endpoints are both class 1 and an edge `e2`
//!   whose endpoints are both class 0 (they exist: a cycle cannot
//!   alternate classes at every step, since cross-edges form a perfect
//!   matching; both kinds are found by search and asserted). Splice:
//!
//!   1. copies `00`–`01` through `e1` (their images differ in bit `2n−3`,
//!      a class-1 dimension, so the two rungs are edges of `D_n`);
//!   2. copies `10`–`11` through `e1` likewise;
//!   3. the two halves through `e2` in copies `00`–`10` (bit `2n−2`, a
//!      class-0 dimension).
//!
//! Each splice removes one cycle edge from each side and adds the two
//! rungs, preserving Hamiltonicity. The result is verified exhaustively
//! by the tests (every node once, every hop an edge, cycle closes).

use crate::dualcube::{DualCube, RecDualCube};
use crate::traits::{NodeId, Topology};

/// A Hamiltonian cycle of `D_n` (`n ≥ 2`) in **recursive-presentation**
/// ids: a sequence of all `2^(2n−1)` nodes in which consecutive nodes
/// (and the last/first pair) are adjacent.
///
/// `D_1 = K_2` has no cycle; it is rejected.
pub fn hamiltonian_cycle_rec(n: u32) -> Vec<NodeId> {
    assert!(n >= 2, "D_1 = K_2 has no Hamiltonian cycle");
    if n == 2 {
        // D_2 is 2-regular: follow the unique cycle from node 0.
        let rec = RecDualCube::new(2);
        let mut cycle = vec![0usize];
        let mut prev = usize::MAX;
        let mut cur = 0usize;
        while cycle.len() < rec.num_nodes() {
            let next = rec
                .neighbors(cur)
                .into_iter()
                .find(|&v| v != prev)
                .expect("2-regular");
            cycle.push(next);
            prev = cur;
            cur = next;
        }
        return cycle;
    }
    let small = hamiltonian_cycle_rec(n - 1);
    let small_bits = 2 * (n - 1) - 1;
    let top = 1usize << (small_bits + 1); // bit 2n−2 (class-0 dimension)
    let next = 1usize << small_bits; // bit 2n−3 (class-1 dimension)

    // Locate the splice edges on the small cycle: positions i such that
    // cycle[i] and cycle[i+1] are both class 1 (e1) / both class 0 (e2),
    // with e1 ≠ e2 guaranteed because their endpoint classes differ.
    let len = small.len();
    let edge_with_class = |class_bit: usize| -> usize {
        (0..len)
            .find(|&i| small[i] & 1 == class_bit && small[(i + 1) % len] & 1 == class_bit)
            .expect("a Hamiltonian cycle always has a monochromatic edge of each class")
    };
    let e1 = edge_with_class(1);
    let e2 = edge_with_class(0);

    // Orient the small cycle as a list starting right after e1, so that
    // the e1 edge is (last, first): walking the list end-to-end traverses
    // the cycle with e1 open.
    let open_at = |start_edge: usize| -> Vec<NodeId> {
        (0..len)
            .map(|k| small[(start_edge + 1 + k) % len])
            .collect()
    };
    let after_e1 = open_at(e1); // path from e1-endpoint y … to x, edge (x,y) removed

    // Half A = copies 00 (prefix 0) and 01 (prefix `next`): traverse copy
    // 00 with e1 open, jump the rung, traverse copy 01 in reverse.
    let mut half_a: Vec<NodeId> = after_e1.to_vec();
    half_a.extend(after_e1.iter().rev().map(|&v| v | next));
    // Half B = copies 10 and 11 (prefix `top`, `top|next`), same shape.
    let half_b: Vec<NodeId> = half_a.iter().map(|&v| v | top).collect();

    // half_a is a cycle (its last element, 01-image of y, is adjacent to
    // its first, 00-image of y′ … precisely: last = 01-image of the node
    // after the open edge; closing uses the second rung). Now open both
    // halves at the e2 edge (which survived the first splice: e2's
    // endpoints are class 0, e1's class 1, so the edges are disjoint) in
    // copy 00 for half A and copy 10 for half B, and join across bit
    // `top`.
    let (x2, y2) = (small[e2], small[(e2 + 1) % len]);
    let open_cycle_at = |cyc: &[NodeId], a: NodeId, b: NodeId| -> Vec<NodeId> {
        // Rotate so the edge (a,b) or (b,a) becomes (last, first).
        let len = cyc.len();
        for i in 0..len {
            let (p, q) = (cyc[i], cyc[(i + 1) % len]);
            if (p == a && q == b) || (p == b && q == a) {
                return (0..len).map(|k| cyc[(i + 1 + k) % len]).collect();
            }
        }
        panic!("edge ({a},{b}) not on the cycle");
    };
    let a_open = open_cycle_at(&half_a, x2, y2);
    let b_open = open_cycle_at(&half_b, x2 | top, y2 | top);
    // a_open runs …→ z where z ∈ {x2, y2}; the seam must be the rung
    // z — z|top, so orient b to start at z|top. Its other endpoint is then
    // (a_open[0])|top, making the final wrap the second rung.
    let z = *a_open.last().unwrap();
    let mut b = b_open;
    if b[0] != z | top {
        b.reverse();
    }
    assert_eq!(b[0], z | top, "rung endpoint must start the second half");
    debug_assert_eq!(*b.last().unwrap(), a_open[0] | top);
    let mut joined = a_open;
    joined.extend(b);
    joined
}

/// The same Hamiltonian cycle in **standard-presentation** node ids.
pub fn hamiltonian_cycle(n: u32) -> Vec<NodeId> {
    let d = DualCube::new(n);
    hamiltonian_cycle_rec(n)
        .into_iter()
        .map(|r| d.rec_to_std(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualcube::RecDualCube;

    fn assert_hamiltonian<T: Topology>(topo: &T, cycle: &[NodeId]) {
        assert_eq!(cycle.len(), topo.num_nodes(), "visits every node");
        let mut seen = vec![false; topo.num_nodes()];
        for &u in cycle {
            assert!(!seen[u], "node {u} repeated");
            seen[u] = true;
        }
        for i in 0..cycle.len() {
            let (a, b) = (cycle[i], cycle[(i + 1) % cycle.len()]);
            assert!(
                topo.is_edge(a, b),
                "hop {a}→{b} (position {i}) is not an edge"
            );
        }
    }

    #[test]
    fn base_case_d2() {
        let rec = RecDualCube::new(2);
        assert_hamiltonian(&rec, &hamiltonian_cycle_rec(2));
    }

    #[test]
    fn recursive_cases() {
        for n in 3..=6 {
            let rec = RecDualCube::new(n);
            assert_hamiltonian(&rec, &hamiltonian_cycle_rec(n));
        }
    }

    #[test]
    fn standard_presentation_cycle_is_hamiltonian_too() {
        for n in 2..=5 {
            let d = DualCube::new(n);
            assert_hamiltonian(&d, &hamiltonian_cycle(n));
        }
    }

    #[test]
    fn cycle_contains_monochromatic_edges_of_both_classes() {
        // The inductive invariant the construction relies on.
        for n in 2..=6 {
            let cycle = hamiltonian_cycle_rec(n);
            let len = cycle.len();
            let has = |class: usize| {
                (0..len).any(|i| cycle[i] & 1 == class && cycle[(i + 1) % len] & 1 == class)
            };
            assert!(has(0), "n={n}: no class-0 edge");
            assert!(has(1), "n={n}: no class-1 edge");
        }
    }

    #[test]
    #[should_panic(expected = "no Hamiltonian cycle")]
    fn d1_rejected() {
        hamiltonian_cycle_rec(1);
    }
}
