//! The [`Topology`] and [`Routed`] traits implemented by every
//! interconnection network in this crate.

/// A node identifier. Nodes of an `N`-node topology are `0..N`.
///
/// Ids are `usize` at API boundaries for ergonomic indexing, but the
/// simulator packs them into `u32` end-to-end (compiled schedules, inbox
/// source arrays, flat link tables), so machines reject topologies with
/// `2^31` nodes or more — far above the D_12 (8.4M node) ceiling any
/// in-memory run can hold anyway.
pub type NodeId = usize;

/// Runs `f` with this thread's reusable neighbour buffer — the
/// allocation-free path behind the trait's default `degree` / `is_edge` /
/// `port_of`. Take/put via `Cell` (not `RefCell`) so a nested call — e.g.
/// a wrapper topology whose `neighbors_into` consults the inner graph's
/// `is_edge` — sees a fresh empty buffer instead of panicking; only the
/// outermost frame keeps the warm allocation.
fn with_neighbor_scratch<R>(f: impl FnOnce(&mut Vec<NodeId>) -> R) -> R {
    use std::cell::Cell;
    thread_local! {
        static SCRATCH: Cell<Vec<NodeId>> = const { Cell::new(Vec::new()) };
    }
    SCRATCH.with(|cell| {
        let mut buf = cell.take();
        let r = f(&mut buf);
        cell.set(buf);
        r
    })
}

/// A static, undirected interconnection network.
///
/// Implementations must present a *simple* undirected graph: no self loops,
/// no parallel edges, and `v ∈ neighbors(u) ⇔ u ∈ neighbors(v)`. The
/// verification helpers in [`crate::graph`] check these invariants
/// mechanically and the test suites of all implementations call them.
pub trait Topology {
    /// Total number of nodes. Node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Appends the neighbours of `u` to `out` (cleared first).
    ///
    /// This is the primitive; [`Topology::neighbors`] is the convenience
    /// allocating form. Taking a scratch buffer keeps BFS over 2^15-node
    /// networks allocation-free in the hot loop.
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>);

    /// The neighbours of `u` as a fresh vector.
    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(u, &mut out);
        out
    }

    /// Degree of node `u`.
    ///
    /// The default enumerates neighbours into a shared thread-local
    /// scratch buffer — allocation-free after the first call per thread.
    /// Topologies with a closed form (all the cube families here)
    /// override it.
    fn degree(&self, u: NodeId) -> usize {
        with_neighbor_scratch(|buf| {
            self.neighbors_into(u, buf);
            buf.len()
        })
    }

    /// Whether `{u, v}` is an edge. Same scratch-buffer default as
    /// [`Topology::degree`]; cube families override with bit tests.
    fn is_edge(&self, u: NodeId, v: NodeId) -> bool {
        with_neighbor_scratch(|buf| {
            self.neighbors_into(u, buf);
            buf.contains(&v)
        })
    }

    /// Upper bound on [`Topology::degree`] over all nodes — the stride of
    /// the simulator's flat port-indexed link tables (slot
    /// `u · max_ports() + port_of(u, v)`). The default sweeps every node
    /// once; regular topologies override with their constant degree.
    /// Callers cache the result (the simulator computes it at most once
    /// per machine, and only when link recording is on).
    fn max_ports(&self) -> u32 {
        (0..self.num_nodes())
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0) as u32
    }

    /// The **port** of edge `{u, v}` at endpoint `u`: the position of `v`
    /// in `neighbors(u)`. `None` when `{u, v}` is not an edge.
    ///
    /// Contract: for a fixed `u`, ports of distinct neighbours are
    /// distinct and `< max_ports()`; the numbering is stable for the
    /// lifetime of the topology value. Ports are *per-endpoint* —
    /// `port_of(u, v)` and `port_of(v, u)` need not agree. Overrides must
    /// be allocation-free (the simulator calls this once per recorded
    /// message); the default walks the scratch neighbour buffer.
    fn port_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        with_neighbor_scratch(|buf| {
            self.neighbors_into(u, buf);
            buf.iter().position(|&w| w == v).map(|p| p as u32)
        })
    }

    /// Total number of undirected edges (default: handshake lemma).
    fn num_edges(&self) -> usize {
        let total: usize = (0..self.num_nodes()).map(|u| self.degree(u)).sum();
        debug_assert!(
            total.is_multiple_of(2),
            "odd degree sum: graph is not undirected"
        );
        total / 2
    }

    /// Whether `{u, v}` is a **cross edge** — an inter-cluster link of the
    /// class-partitioned topologies (the dual-cube's unique `u ↔ ū₀` link,
    /// a metacube cross dimension). Topologies without a class structure
    /// keep the default (`false` for every pair). Only meaningful when
    /// `is_edge(u, v)` holds; implementations need not validate adjacency.
    /// Must be allocation-free (the simulator's link-utilization
    /// accounting calls it once per delivered message).
    fn is_cross_edge(&self, _u: NodeId, _v: NodeId) -> bool {
        false
    }

    /// Human-readable name, e.g. `"D_3"` or `"Q_5"`.
    fn name(&self) -> String;
}

/// A topology with a built-in (formula-driven) point-to-point router.
///
/// `route` must return a path along edges of the topology; the graph tests
/// check every hop with [`Topology::is_edge`] and compare the length against
/// BFS distance where the implementation claims shortest paths.
pub trait Routed: Topology {
    /// A path `[u, …, v]` from `u` to `v` along edges of the network.
    /// Returns `[u]` when `u == v`.
    fn route(&self, u: NodeId, v: NodeId) -> Vec<NodeId>;

    /// Number of hops of [`Routed::route`]. Implementations with a
    /// closed-form distance override this without materialising the path.
    fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        (self.route(u, v).len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-cycle, the smallest interesting hand-rolled topology, used to
    /// exercise the trait's default methods.
    struct C4;

    impl Topology for C4 {
        fn num_nodes(&self) -> usize {
            4
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            out.clear();
            out.push((u + 1) % 4);
            out.push((u + 3) % 4);
        }
        fn name(&self) -> String {
            "C_4".into()
        }
    }

    #[test]
    fn default_degree_and_edges() {
        let c = C4;
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.num_edges(), 4);
        assert!(c.is_edge(0, 1));
        assert!(c.is_edge(0, 3));
        assert!(!c.is_edge(0, 2));
        assert!(!c.is_edge(1, 3));
    }

    #[test]
    fn neighbors_matches_neighbors_into() {
        let c = C4;
        let mut buf = Vec::new();
        for u in 0..4 {
            c.neighbors_into(u, &mut buf);
            assert_eq!(buf, c.neighbors(u));
        }
    }

    #[test]
    fn default_ports_follow_neighbor_order() {
        let c = C4;
        assert_eq!(c.max_ports(), 2);
        for u in 0..4 {
            for (p, v) in c.neighbors(u).into_iter().enumerate() {
                assert_eq!(c.port_of(u, v), Some(p as u32));
            }
            assert_eq!(c.port_of(u, (u + 2) % 4), None);
            assert_eq!(c.port_of(u, u), None);
        }
    }

    /// A topology whose `neighbors_into` itself calls a default trait
    /// method of another topology — the scratch buffer must tolerate the
    /// nesting (each frame takes the cell, inner frames see it empty).
    struct FilteredC4;

    impl Topology for FilteredC4 {
        fn num_nodes(&self) -> usize {
            4
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            out.clear();
            for v in 0..4 {
                if v != u && C4.is_edge(u, v) {
                    out.push(v);
                }
            }
        }
        fn name(&self) -> String {
            "C_4/filter".into()
        }
    }

    #[test]
    fn scratch_defaults_survive_reentrancy() {
        let f = FilteredC4;
        assert_eq!(f.degree(0), 2);
        assert!(f.is_edge(0, 1));
        assert!(!f.is_edge(0, 2));
        assert_eq!(f.port_of(2, 3), Some(1));
        assert_eq!(f.num_edges(), 4);
    }
}
