//! The [`Topology`] and [`Routed`] traits implemented by every
//! interconnection network in this crate.

/// A node identifier. Nodes of an `N`-node topology are `0..N`.
pub type NodeId = usize;

/// A static, undirected interconnection network.
///
/// Implementations must present a *simple* undirected graph: no self loops,
/// no parallel edges, and `v ∈ neighbors(u) ⇔ u ∈ neighbors(v)`. The
/// verification helpers in [`crate::graph`] check these invariants
/// mechanically and the test suites of all implementations call them.
pub trait Topology {
    /// Total number of nodes. Node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Appends the neighbours of `u` to `out` (cleared first).
    ///
    /// This is the primitive; [`Topology::neighbors`] is the convenience
    /// allocating form. Taking a scratch buffer keeps BFS over 2^15-node
    /// networks allocation-free in the hot loop.
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>);

    /// The neighbours of `u` as a fresh vector.
    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(u, &mut out);
        out
    }

    /// Degree of node `u`.
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Whether `{u, v}` is an edge.
    fn is_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).contains(&v)
    }

    /// Total number of undirected edges (default: handshake lemma).
    fn num_edges(&self) -> usize {
        let total: usize = (0..self.num_nodes()).map(|u| self.degree(u)).sum();
        debug_assert!(
            total.is_multiple_of(2),
            "odd degree sum: graph is not undirected"
        );
        total / 2
    }

    /// Whether `{u, v}` is a **cross edge** — an inter-cluster link of the
    /// class-partitioned topologies (the dual-cube's unique `u ↔ ū₀` link,
    /// a metacube cross dimension). Topologies without a class structure
    /// keep the default (`false` for every pair). Only meaningful when
    /// `is_edge(u, v)` holds; implementations need not validate adjacency.
    /// Must be allocation-free (the simulator's link-utilization
    /// accounting calls it once per delivered message).
    fn is_cross_edge(&self, _u: NodeId, _v: NodeId) -> bool {
        false
    }

    /// Human-readable name, e.g. `"D_3"` or `"Q_5"`.
    fn name(&self) -> String;
}

/// A topology with a built-in (formula-driven) point-to-point router.
///
/// `route` must return a path along edges of the topology; the graph tests
/// check every hop with [`Topology::is_edge`] and compare the length against
/// BFS distance where the implementation claims shortest paths.
pub trait Routed: Topology {
    /// A path `[u, …, v]` from `u` to `v` along edges of the network.
    /// Returns `[u]` when `u == v`.
    fn route(&self, u: NodeId, v: NodeId) -> Vec<NodeId>;

    /// Number of hops of [`Routed::route`]. Implementations with a
    /// closed-form distance override this without materialising the path.
    fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        (self.route(u, v).len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-cycle, the smallest interesting hand-rolled topology, used to
    /// exercise the trait's default methods.
    struct C4;

    impl Topology for C4 {
        fn num_nodes(&self) -> usize {
            4
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            out.clear();
            out.push((u + 1) % 4);
            out.push((u + 3) % 4);
        }
        fn name(&self) -> String {
            "C_4".into()
        }
    }

    #[test]
    fn default_degree_and_edges() {
        let c = C4;
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.num_edges(), 4);
        assert!(c.is_edge(0, 1));
        assert!(c.is_edge(0, 3));
        assert!(!c.is_edge(0, 2));
        assert!(!c.is_edge(1, 3));
    }

    #[test]
    fn neighbors_matches_neighbors_into() {
        let c = C4;
        let mut buf = Vec::new();
        for u in 0..4 {
            c.neighbors_into(u, &mut buf);
            assert_eq!(buf, c.neighbors(u));
        }
    }
}
