//! # dc-topology — interconnection networks for the dual-cube reproduction
//!
//! Topology substrate for the reproduction of *Prefix Computation and
//! Sorting in Dual-Cube* (Li, Peng & Chu, ICPP 2008). It provides:
//!
//! * [`DualCube`] — the paper's network `D_n`, in both the **standard
//!   presentation** of Section 2 (class bit, cluster id, node id) and the
//!   **recursive presentation** of Section 4 ([`RecDualCube`], interleaved
//!   bit layout, `D_n = 4 × D_(n−1)`);
//! * [`Hypercube`] — the reference network `Q_m` the paper's algorithms
//!   emulate and are measured against;
//! * [`CubeConnectedCycles`] — the bounded-degree competitor from the
//!   Section 1 motivation;
//! * shortest-path routing ([`Routed`]) with the paper's closed-form
//!   distance, and brute-force verification tools ([`graph`]) used by the
//!   test suite to validate every closed-form claim (distance, diameter,
//!   degree, counts) against BFS.
//!
//! ## Quick start
//!
//! ```
//! use dc_topology::{DualCube, Topology, Routed, graph};
//!
//! let d = DualCube::new(3);                    // Figure 2: 32 nodes, degree 3
//! assert_eq!(d.num_nodes(), 32);
//! assert_eq!(d.diameter_formula(), 6);         // 2n
//! assert_eq!(graph::diameter_vertex_transitive(&d), 6);
//! let path = d.route(0b00000, 0b01011);
//! assert_eq!(path.len() as u32 - 1, d.distance(0b00000, 0b01011));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bits;
pub mod ccc;
pub mod connectivity;
pub mod dualcube;
pub mod embedding;
pub mod faulty;
pub mod graph;
pub mod hamiltonian;
pub mod hypercube;
pub mod metacube;
pub mod properties;
pub mod shard;
pub mod traits;

pub use ccc::CubeConnectedCycles;
pub use dualcube::{Address, Class, DualCube, RecDualCube};
pub use hypercube::Hypercube;
pub use metacube::Metacube;
pub use shard::ShardMap;
pub use traits::{NodeId, Routed, Topology};
