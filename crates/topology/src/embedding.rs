//! Graph embeddings into the dual-cube — the quantitative content behind
//! Technique 2.
//!
//! `D_sort` works because the identity map on recursive-presentation ids
//! embeds the hypercube `Q_(2n−1)` into `D_n` with **dilation 3**: owned
//! dimensions map to edges, missing dimensions to the 3-hop
//! cross/flip/cross path. This module computes the embedding's exact cost
//! profile (dilation per dimension, average dilation, and the
//! **congestion** each dual-cube link suffers — the quantity that would
//! throttle a real machine emulating all dimensions at once), plus the
//! dilation-1 **ring embedding** given by the Hamiltonian cycle of
//! [`crate::hamiltonian`].

use crate::dualcube::RecDualCube;
use crate::traits::{NodeId, Topology};
use std::collections::HashMap;

/// Cost profile of embedding `Q_(2n−1)` into `D_n` by the identity map on
/// recursive ids.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingReport {
    /// The dual-cube parameter `n`.
    pub n: u32,
    /// Dilation of each guest dimension `0 ..= 2n−2` (1 if the dimension's
    /// edges exist at every node — only `j = 0` — else 3 for half the
    /// nodes; reported as the *maximum* over nodes).
    pub dilation_per_dim: Vec<u32>,
    /// Maximum dilation over all guest edges.
    pub max_dilation: u32,
    /// Average dilation over all guest edges.
    pub avg_dilation: f64,
    /// Maximum number of guest-edge paths crossing one host link.
    pub max_congestion: usize,
    /// Average congestion over host links.
    pub avg_congestion: f64,
}

/// Analyses the `Q_(2n−1) → D_n` identity embedding exactly, by routing
/// every guest edge and counting host-link usage.
pub fn hypercube_into_dual_cube(n: u32) -> EmbeddingReport {
    let rec = RecDualCube::new(n);
    let dims = rec.dims();
    let mut congestion: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    let mut total_dilation = 0u64;
    let mut guest_edges = 0u64;
    let mut max_dilation = 0u32;
    let mut dilation_per_dim = vec![0u32; dims as usize];

    let mut use_edge = |a: NodeId, b: NodeId| {
        let key = (a.min(b), a.max(b));
        *congestion.entry(key).or_insert(0) += 1;
    };
    for r in 0..rec.num_nodes() {
        for j in 0..dims {
            let partner = rec.partner(r, j);
            if partner < r {
                continue; // count each guest edge once
            }
            guest_edges += 1;
            let dil = if rec.has_direct_edge(r, j) {
                use_edge(r, partner);
                1
            } else {
                let path = rec.emulation_path(r, j);
                for w in path.windows(2) {
                    use_edge(w[0], w[1]);
                }
                3
            };
            total_dilation += dil as u64;
            max_dilation = max_dilation.max(dil);
            dilation_per_dim[j as usize] = dilation_per_dim[j as usize].max(dil);
        }
    }
    let host_edges = rec.num_edges();
    let total_usage: usize = congestion.values().sum();
    EmbeddingReport {
        n,
        dilation_per_dim,
        max_dilation,
        avg_dilation: total_dilation as f64 / guest_edges as f64,
        max_congestion: congestion.values().copied().max().unwrap_or(0),
        avg_congestion: total_usage as f64 / host_edges as f64,
    }
}

/// Dilation of embedding the `2^(2n−1)`-node ring into `D_n` along the
/// Hamiltonian cycle: always 1 (every ring edge maps to a host edge).
/// Returned for symmetry with [`hypercube_into_dual_cube`]; the fact
/// itself is asserted.
pub fn ring_into_dual_cube(n: u32) -> u32 {
    let rec = RecDualCube::new(n);
    let cycle = crate::hamiltonian::hamiltonian_cycle_rec(n);
    for i in 0..cycle.len() {
        let (a, b) = (cycle[i], cycle[(i + 1) % cycle.len()]);
        assert!(rec.is_edge(a, b), "ring embedding must have dilation 1");
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilation_pattern_matches_technique_two() {
        for n in 2..=4 {
            let r = hypercube_into_dual_cube(n);
            assert_eq!(r.max_dilation, 3, "n={n}");
            // Dimension 0 (cross-edges) is the only dilation-1 dimension.
            assert_eq!(r.dilation_per_dim[0], 1);
            assert!(r.dilation_per_dim[1..].iter().all(|&d| d == 3));
            // Average dilation: per dimension j>0, half the edges are
            // direct (1) and half 3-hop (3) → mean 2; dimension 0 all 1.
            // Overall: (1 + 2(2n−2)) / (2n−1).
            let nf = n as f64;
            let expect = (1.0 + 2.0 * (2.0 * nf - 2.0)) / (2.0 * nf - 1.0);
            assert!((r.avg_dilation - expect).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn congestion_concentrates_on_cross_edges() {
        // A cross-edge carries its own guest dimension 0, plus one hop for
        // each of the n−1 missing dimensions of each of its two endpoints
        // (as the first or last hop of that dimension's 3-hop path) →
        // 1 + 2(n−1) = 2n−1. A cluster edge carries its own dimension plus
        // the single middle hop of its cross-partners' shared missing-
        // dimension path → 2.
        for n in 2..=4u32 {
            let r = hypercube_into_dual_cube(n);
            assert_eq!(r.max_congestion, 2 * n as usize - 1, "n={n}");
        }
    }

    #[test]
    fn every_guest_edge_accounted() {
        let n = 3;
        let r = hypercube_into_dual_cube(n);
        // Total host-link usage = Σ dilation over guest edges =
        // avg_dilation × guest_edges = avg_congestion × host_edges.
        let rec = RecDualCube::new(n);
        let guest_edges = (rec.num_nodes() * (2 * n as usize - 1)) / 2;
        let host_edges = rec.num_edges();
        let lhs = r.avg_dilation * guest_edges as f64;
        let rhs = r.avg_congestion * host_edges as f64;
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn ring_embedding_has_dilation_one() {
        for n in 2..=5 {
            assert_eq!(ring_into_dual_cube(n), 1);
        }
    }
}
