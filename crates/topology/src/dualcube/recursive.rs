//! The *recursive presentation* of the dual-cube (paper, Section 4).
//!
//! Section 4 re-labels the nodes of `D_n` so that the recursive structure
//! `D_n = 4 × D_(n−1)` becomes positional. In the recursive id
//! `(a_{2n−2} … a_1 a_0)`:
//!
//! * bit 0 is the **class indicator** (the standard presentation's leftmost
//!   bit moved to the right end);
//! * the even positions `2, 4, …, 2n−2` hold the class-0 node-id field
//!   (= class-1 cluster-id field), i.e. standard part I;
//! * the odd positions `1, 3, …, 2n−3` hold the class-0 cluster-id field
//!   (= class-1 node-id field), i.e. standard part II.
//!
//! Consequences (all verified by the tests in this module):
//!
//! * A node has a **direct edge** along dimension `j > 0` iff `j` is even
//!   for a class-0 node / odd for a class-1 node — exactly the paper's
//!   "there is a link between `u` and `v` if and only if `i` is an even
//!   number" (Section 6, stated there for `u_0 = v_0 = 0`).
//! * Dimension 0 is the cross-edge, present at every node.
//! * Fixing the two leftmost bits `(a_{2n−2}, a_{2n−3})` yields four
//!   node-disjoint copies of `D_(n−1)` in the same presentation — the
//!   recursive construction of Figure 4, with base case `D_1 = Q_1`.
//! * For a *missing* dimension `j`, the 3-hop emulation path of
//!   Algorithm 3 is `(u, ū_0), (ū_0, (ū_0)_j), ((ū_0)_j, ū_j)`: cross,
//!   flip `j` in the other class (where the edge exists), cross back.

use super::DualCube;
use crate::bits::{bit, flip, with_bit};
use crate::traits::{NodeId, Topology};

impl DualCube {
    /// Number of dimensions of the recursive presentation, `2n−1`
    /// (dimensions `0 ..= 2n−2`; same count as address bits).
    #[inline]
    pub fn rec_dims(&self) -> u32 {
        self.address_bits()
    }

    /// Converts a standard-presentation node id to its recursive id.
    ///
    /// Standard bit `k` (part I, `0 ≤ k < n−1`) moves to recursive bit
    /// `2k+2`; standard bit `n−1+k` (part II) moves to recursive bit
    /// `2k+1`; the class bit `2n−2` moves to recursive bit 0.
    pub fn std_to_rec(&self, u: NodeId) -> NodeId {
        debug_assert!(u < self.num_nodes());
        let w = self.cluster_dim();
        let mut r = with_bit(0, 0, bit(u, self.class_bit()));
        for k in 0..w {
            r = with_bit(r, 2 * k + 2, bit(u, k));
            r = with_bit(r, 2 * k + 1, bit(u, w + k));
        }
        r
    }

    /// Inverse of [`DualCube::std_to_rec`].
    pub fn rec_to_std(&self, r: NodeId) -> NodeId {
        debug_assert!(r < self.num_nodes());
        let w = self.cluster_dim();
        let mut u = with_bit(0, self.class_bit(), bit(r, 0));
        for k in 0..w {
            u = with_bit(u, k, bit(r, 2 * k + 2));
            u = with_bit(u, w + k, bit(r, 2 * k + 1));
        }
        u
    }

    /// The *partner* of recursive node `r` at dimension `j`: the node whose
    /// recursive id differs from `r`'s in exactly bit `j`. The partner is
    /// always defined; whether a **direct edge** to it exists is
    /// [`DualCube::rec_has_direct_edge`].
    #[inline]
    pub fn rec_partner(&self, r: NodeId, j: u32) -> NodeId {
        debug_assert!(j < self.rec_dims());
        flip(r, j)
    }

    /// Whether recursive node `r` has a direct edge to its dimension-`j`
    /// partner: always for `j = 0` (cross-edge); for `j > 0` iff `j`'s
    /// parity matches the node's class (class 0 ↔ even `j`, class 1 ↔ odd).
    #[inline]
    pub fn rec_has_direct_edge(&self, r: NodeId, j: u32) -> bool {
        debug_assert!(j < self.rec_dims());
        j == 0 || j.is_multiple_of(2) == (r & 1 == 0)
    }

    /// The 3-hop emulation path `[u, ū_0, (ū_0)_j, ū_j]` (in recursive
    /// coordinates) used by Algorithm 3 when the direct dimension-`j` edge
    /// is missing. Every consecutive pair on the path is a direct edge —
    /// asserted in tests for all nodes and dimensions.
    ///
    /// Panics (debug) if the direct edge exists — callers should use it
    /// instead.
    pub fn rec_emulation_path(&self, r: NodeId, j: u32) -> [NodeId; 4] {
        debug_assert!(j > 0 && !self.rec_has_direct_edge(r, j));
        let v = flip(r, 0); // cross to the other class
        let w = flip(v, j); // the other class owns dimension j
        let t = flip(w, 0); // cross back: t == flip(r, j)
        [r, v, w, t]
    }

    /// The recursive-presentation id of the `D_(n−1)` copy containing `r`:
    /// the two leftmost bits `(a_{2n−2}, a_{2n−3})` as a value in `0..4`.
    /// Only meaningful for `n ≥ 2`.
    #[inline]
    pub fn rec_subcube(&self, r: NodeId) -> usize {
        debug_assert!(self.n() >= 2);
        r >> (self.rec_dims() - 2)
    }
}

/// The dual-cube *in recursive coordinates*, as a [`Topology`] in its own
/// right: node `r` of `RecDualCube` is node `rec_to_std(r)` of the
/// underlying [`DualCube`]. The two are isomorphic graphs (tested), so
/// algorithms may be written against whichever presentation is natural —
/// `D_prefix` uses the standard one, `D_sort` this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecDualCube {
    inner: DualCube,
}

impl RecDualCube {
    /// Wraps `D_n` in recursive coordinates.
    pub fn new(n: u32) -> Self {
        RecDualCube {
            inner: DualCube::new(n),
        }
    }

    /// The underlying standard-presentation dual-cube.
    #[inline]
    pub fn standard(&self) -> &DualCube {
        &self.inner
    }

    /// The connectivity parameter `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.inner.n()
    }

    /// Number of dimensions `2n−1` (see [`DualCube::rec_dims`]).
    #[inline]
    pub fn dims(&self) -> u32 {
        self.inner.rec_dims()
    }

    /// Partner at dimension `j` (always defined; see
    /// [`DualCube::rec_partner`]).
    #[inline]
    pub fn partner(&self, r: NodeId, j: u32) -> NodeId {
        self.inner.rec_partner(r, j)
    }

    /// Whether the direct dimension-`j` edge exists at `r`.
    #[inline]
    pub fn has_direct_edge(&self, r: NodeId, j: u32) -> bool {
        self.inner.rec_has_direct_edge(r, j)
    }

    /// 3-hop emulation path for a missing dimension (see
    /// [`DualCube::rec_emulation_path`]).
    #[inline]
    pub fn emulation_path(&self, r: NodeId, j: u32) -> [NodeId; 4] {
        self.inner.rec_emulation_path(r, j)
    }
}

impl Topology for RecDualCube {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn neighbors_into(&self, r: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for j in 0..self.dims() {
            if self.has_direct_edge(r, j) {
                out.push(self.partner(r, j));
            }
        }
    }

    fn degree(&self, _r: NodeId) -> usize {
        self.inner.n() as usize
    }

    fn is_edge(&self, r: NodeId, s: NodeId) -> bool {
        if (r ^ s).count_ones() != 1 {
            return false;
        }
        self.has_direct_edge(r, (r ^ s).trailing_zeros())
    }

    fn num_edges(&self) -> usize {
        self.inner.num_edges()
    }

    fn is_cross_edge(&self, r: NodeId, s: NodeId) -> bool {
        // In recursive coordinates bit 0 is the class indicator, so the
        // cross edge is exactly the dimension-0 edge (present at every
        // node).
        r ^ s == 1
    }

    fn max_ports(&self) -> u32 {
        self.inner.n()
    }

    /// The port of a direct dimension-`j` edge is the rank of `j` among
    /// the direct dimensions at `r` — exactly the position
    /// [`Topology::neighbors_into`] emits it at. `O(2n−1)` bit tests,
    /// allocation-free.
    fn port_of(&self, r: NodeId, s: NodeId) -> Option<u32> {
        if !self.is_edge(r, s) {
            return None;
        }
        let j = (r ^ s).trailing_zeros();
        Some((0..j).filter(|&i| self.has_direct_edge(r, i)).count() as u32)
    }

    fn name(&self) -> String {
        format!("D_{} (recursive presentation)", self.inner.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    #[test]
    fn mapping_is_a_bijection() {
        for n in 1..=4 {
            let d = DualCube::new(n);
            let mut seen = vec![false; d.num_nodes()];
            for u in 0..d.num_nodes() {
                let r = d.std_to_rec(u);
                assert!(r < d.num_nodes());
                assert!(!seen[r], "collision at rec id {r}");
                seen[r] = true;
                assert_eq!(d.rec_to_std(r), u, "round trip for {u}");
            }
        }
    }

    #[test]
    fn mapping_is_a_graph_isomorphism() {
        for n in 1..=4 {
            let d = DualCube::new(n);
            let rec = RecDualCube::new(n);
            for u in 0..d.num_nodes() {
                for v in 0..d.num_nodes() {
                    assert_eq!(
                        d.is_edge(u, v),
                        rec.is_edge(d.std_to_rec(u), d.std_to_rec(v)),
                        "D_{n}: {u}-{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn rec_presentation_is_a_sound_graph() {
        for n in 1..=4 {
            let rec = RecDualCube::new(n);
            assert!(graph::check_simple_undirected(&rec).is_empty());
            assert!(graph::is_connected(&rec));
            assert_eq!(rec.num_edges(), DualCube::new(n).num_edges());
        }
    }

    #[test]
    fn direct_edge_parity_rule() {
        // Class-0 (rec bit 0 = 0) nodes own even dimensions; class-1 odd.
        let rec = RecDualCube::new(3);
        for r in 0..rec.num_nodes() {
            let class1 = r & 1 == 1;
            for j in 0..rec.dims() {
                let expect = j == 0 || ((j % 2 == 1) == class1);
                assert_eq!(rec.has_direct_edge(r, j), expect, "r={r} j={j}");
                // The direct-edge predicate must agree with actual adjacency.
                assert_eq!(
                    rec.is_edge(r, rec.partner(r, j)),
                    expect,
                    "adjacency r={r} j={j}"
                );
            }
        }
    }

    #[test]
    fn every_node_has_n_direct_dimensions() {
        for n in 1..=4 {
            let rec = RecDualCube::new(n);
            for r in 0..rec.num_nodes() {
                let direct = (0..rec.dims())
                    .filter(|&j| rec.has_direct_edge(r, j))
                    .count();
                assert_eq!(direct, n as usize);
            }
        }
    }

    #[test]
    fn emulation_path_is_valid_and_ends_at_partner() {
        for n in 2..=4 {
            let rec = RecDualCube::new(n);
            for r in 0..rec.num_nodes() {
                for j in 1..rec.dims() {
                    if rec.has_direct_edge(r, j) {
                        continue;
                    }
                    let path = rec.emulation_path(r, j);
                    assert_eq!(path[0], r);
                    assert_eq!(path[3], rec.partner(r, j));
                    for w in path.windows(2) {
                        assert!(rec.is_edge(w[0], w[1]), "hop {w:?} (r={r}, j={j})");
                    }
                }
            }
        }
    }

    #[test]
    fn four_subcubes_are_smaller_dual_cubes() {
        // Fixing the two leftmost recursive bits yields D_(n−1): same edge
        // rule on the remaining 2n−3 bits.
        for n in 2..=4 {
            let rec = RecDualCube::new(n);
            let small = RecDualCube::new(n - 1);
            let low = rec.num_nodes() / 4;
            for top in 0..4usize {
                for a in 0..low {
                    let ra = top * low + a;
                    assert_eq!(rec.standard().rec_subcube(ra), top);
                    for b in 0..low {
                        let rb = top * low + b;
                        assert_eq!(
                            rec.is_edge(ra, rb),
                            small.is_edge(a, b),
                            "n={n} top={top} a={a} b={b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn subcube_links_match_construction() {
        // The inter-subcube edges created by the recursive step connect
        // copies differing in exactly one of the two leftmost bits, along
        // dimensions 2n−2 (even → class-0 nodes) and 2n−3 (odd → class-1).
        let rec = RecDualCube::new(3);
        let top_dim = rec.dims() - 1; // 4 (even)
        let next_dim = rec.dims() - 2; // 3 (odd)
        for r in 0..rec.num_nodes() {
            assert_eq!(rec.has_direct_edge(r, top_dim), r & 1 == 0);
            assert_eq!(rec.has_direct_edge(r, next_dim), r & 1 == 1);
        }
    }

    #[test]
    fn d1_base_case_is_q1() {
        let rec = RecDualCube::new(1);
        assert_eq!(rec.num_nodes(), 2);
        assert!(rec.is_edge(0, 1));
        assert_eq!(rec.dims(), 1);
    }

    #[test]
    fn std_to_rec_keeps_class_in_bit_zero() {
        let d = DualCube::new(3);
        for u in 0..d.num_nodes() {
            let r = d.std_to_rec(u);
            assert_eq!(r & 1 == 1, d.class_of(u) == super::super::Class::One);
        }
    }
}
