//! The dual-cube interconnection network `D_n` (paper, Section 2).
//!
//! `D_n` is an undirected graph on `{0,1}^(2n−1)`. Two nodes `u`, `v` are
//! adjacent iff they differ in exactly one bit position `i` and
//!
//! 1. `i = 2n−2` (the class bit) — a **cross-edge**, or
//! 2. `0 ≤ i ≤ n−2` and both nodes are class 0 — a cluster edge inside a
//!    class-0 `(n−1)`-cube, or
//! 3. `n−1 ≤ i ≤ 2n−3` and both nodes are class 1 — a cluster edge inside a
//!    class-1 `(n−1)`-cube.
//!
//! Thus each node has degree `n`: `n−1` cluster edges plus one cross-edge,
//! and `D_n` has `2^(2n−1)` nodes — the square of the cluster size, using
//! half the links per node of a hypercube of the same size.

mod address;
pub mod recursive;
mod routing;

pub use address::{Address, Class};
pub use recursive::RecDualCube;

use crate::bits::{bit, field, flip, hamming, with_field};
use crate::traits::{NodeId, Topology};

/// The `n`-connected dual-cube `D_n`: `2^(2n−1)` nodes of degree `n`.
///
/// ```
/// use dc_topology::{DualCube, Topology, Class};
/// let d = DualCube::new(3); // 32 nodes, degree 3 — Figure 2 of the paper
/// assert_eq!(d.num_nodes(), 32);
/// assert_eq!(d.degree(0), 3);
/// let u = d.from_parts(Class::Zero, 0b10, 0b01);
/// assert_eq!(d.cluster_id(u), 0b10);
/// assert_eq!(d.node_id(u), 0b01);
/// assert!(d.is_edge(u, d.cross_neighbor(u)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualCube {
    n: u32,
}

/// Largest supported `n` (address width `2n−1 ≤ 25` keeps instances well
/// inside memory for exhaustive simulation).
pub const MAX_DUAL_CUBE_N: u32 = 13;

impl DualCube {
    /// Creates `D_n`. Panics unless `1 ≤ n ≤` [`MAX_DUAL_CUBE_N`].
    ///
    /// `D_1` is the degenerate base case `K_2` (two single-node clusters
    /// joined by the cross-edge), matching the recursive construction's
    /// base `D_1 = Q_1` in Section 4.
    pub fn new(n: u32) -> Self {
        assert!(
            (1..=MAX_DUAL_CUBE_N).contains(&n),
            "dual-cube parameter {n} out of range 1..={MAX_DUAL_CUBE_N}"
        );
        DualCube { n }
    }

    /// The connectivity parameter `n` (node degree).
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of address bits, `2n−1`.
    #[inline]
    pub fn address_bits(&self) -> u32 {
        2 * self.n - 1
    }

    /// Dimension of each cluster hypercube, `n−1`.
    #[inline]
    pub fn cluster_dim(&self) -> u32 {
        self.n - 1
    }

    /// Nodes per cluster, `2^(n−1)`.
    #[inline]
    pub fn cluster_size(&self) -> usize {
        1usize << self.cluster_dim()
    }

    /// Clusters per class, `2^(n−1)`.
    #[inline]
    pub fn clusters_per_class(&self) -> usize {
        1usize << self.cluster_dim()
    }

    /// Bit position of the class indicator, `2n−2`.
    #[inline]
    pub fn class_bit(&self) -> u32 {
        2 * self.n - 2
    }

    /// The class of node `u`.
    #[inline]
    pub fn class_of(&self, u: NodeId) -> Class {
        Class::from_bit(bit(u, self.class_bit()))
    }

    /// Part I of the address: the rightmost `n−1` bits.
    #[inline]
    pub fn part1(&self, u: NodeId) -> usize {
        field(u, 0, self.cluster_dim())
    }

    /// Part II of the address: bits `n−1 … 2n−3`.
    #[inline]
    pub fn part2(&self, u: NodeId) -> usize {
        field(u, self.cluster_dim(), self.cluster_dim())
    }

    /// The node id of `u` inside its cluster (part I for class 0,
    /// part II for class 1).
    #[inline]
    pub fn node_id(&self, u: NodeId) -> usize {
        match self.class_of(u) {
            Class::Zero => self.part1(u),
            Class::One => self.part2(u),
        }
    }

    /// The cluster id of `u` (part II for class 0, part I for class 1).
    #[inline]
    pub fn cluster_id(&self, u: NodeId) -> usize {
        match self.class_of(u) {
            Class::Zero => self.part2(u),
            Class::One => self.part1(u),
        }
    }

    /// Assembles a raw node id from `(class, cluster id, node id)`.
    pub fn from_parts(&self, class: Class, cluster: usize, node: usize) -> NodeId {
        let w = self.cluster_dim();
        assert!(
            cluster < self.clusters_per_class(),
            "cluster id {cluster} out of range"
        );
        assert!(node < self.cluster_size(), "node id {node} out of range");
        if w == 0 {
            // D_1: the whole address is the class bit.
            return class.as_usize();
        }
        let (p2, p1) = match class {
            Class::Zero => (cluster, node),
            Class::One => (node, cluster),
        };
        let u = with_field(with_field(0, 0, w, p1), w, w, p2);
        crate::bits::with_bit(u, self.class_bit(), class.as_bit())
    }

    /// Decodes `u` into its structured [`Address`].
    #[inline]
    pub fn address(&self, u: NodeId) -> Address {
        Address::new(self.class_of(u), self.cluster_id(u), self.node_id(u))
    }

    /// Re-assembles an [`Address`] into a raw node id.
    #[inline]
    pub fn from_address(&self, a: Address) -> NodeId {
        self.from_parts(a.class, a.cluster, a.node)
    }

    /// The unique cross-edge neighbour of `u` (class bit flipped).
    #[inline]
    pub fn cross_neighbor(&self, u: NodeId) -> NodeId {
        flip(u, self.class_bit())
    }

    /// The neighbour of `u` across cluster dimension `i` (`0 ≤ i < n−1`):
    /// flips bit `i` of the node-id field, i.e. raw bit `i` for class-0
    /// nodes and raw bit `n−1+i` for class-1 nodes.
    #[inline]
    pub fn cluster_neighbor(&self, u: NodeId, i: u32) -> NodeId {
        debug_assert!(i < self.cluster_dim(), "cluster dimension {i} out of range");
        match self.class_of(u) {
            Class::Zero => flip(u, i),
            Class::One => flip(u, self.cluster_dim() + i),
        }
    }

    /// Whether `u` and `v` belong to the same cluster (`C_u = C_v`).
    #[inline]
    pub fn same_cluster(&self, u: NodeId, v: NodeId) -> bool {
        self.class_of(u) == self.class_of(v) && self.cluster_id(u) == self.cluster_id(v)
    }

    /// A dense index identifying the cluster of `u`, in
    /// `0 .. 2·clusters_per_class()`; class-0 clusters come first.
    /// Useful for bucketing per-cluster state in the algorithms.
    #[inline]
    pub fn cluster_index(&self, u: NodeId) -> usize {
        self.class_of(u).as_usize() * self.clusters_per_class() + self.cluster_id(u)
    }

    /// All member node ids of the cluster with dense index `ci`
    /// (see [`DualCube::cluster_index`]), ordered by node id.
    pub fn cluster_members(&self, ci: usize) -> Vec<NodeId> {
        let class = if ci < self.clusters_per_class() {
            Class::Zero
        } else {
            Class::One
        };
        let cluster = ci % self.clusters_per_class();
        (0..self.cluster_size())
            .map(|node| self.from_parts(class, cluster, node))
            .collect()
    }

    /// The data-placement index of Section 3: `lin(u) = u` for class-0
    /// nodes; for class-1 nodes parts I and II are swapped so that the
    /// indices held by the nodes of every cluster are consecutive, ordered
    /// by node id. This is the ordering in which `D_prefix` produces
    /// prefixes and `D_sort`'s standard-presentation callers interpret
    /// ranks.
    #[inline]
    pub fn linear_index(&self, u: NodeId) -> usize {
        let w = self.cluster_dim();
        if w == 0 {
            return u; // D_1: nothing to swap.
        }
        match self.class_of(u) {
            Class::Zero => u,
            Class::One => with_field(with_field(u, 0, w, self.part2(u)), w, w, self.part1(u)),
        }
    }

    /// Inverse of [`DualCube::linear_index`].
    #[inline]
    pub fn from_linear_index(&self, idx: usize) -> NodeId {
        // The swap is an involution and the class bit is unchanged, so the
        // same transformation inverts it.
        self.linear_index(idx)
    }

    /// The closed-form distance of Section 2: the Hamming distance when
    /// `u`, `v` share a cluster or lie in clusters of *distinct* classes;
    /// otherwise (same class, different clusters) Hamming distance plus two
    /// — one hop to enter a cluster of the other class and one to leave.
    ///
    /// Verified against BFS for all pairs up to `n = 4` in the tests.
    pub fn distance_formula(&self, u: NodeId, v: NodeId) -> u32 {
        let h = hamming(u, v);
        if self.class_of(u) != self.class_of(v) || self.same_cluster(u, v) {
            h
        } else {
            h + 2
        }
    }

    /// The diameter: `2n` for `n ≥ 2` (hypercube of the same size plus
    /// one), and `1` for the degenerate `D_1 = K_2`.
    pub fn diameter_formula(&self) -> u32 {
        if self.n == 1 {
            1
        } else {
            2 * self.n
        }
    }
}

impl Topology for DualCube {
    fn num_nodes(&self) -> usize {
        1usize << self.address_bits()
    }

    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        debug_assert!(u < self.num_nodes());
        out.clear();
        for i in 0..self.cluster_dim() {
            out.push(self.cluster_neighbor(u, i));
        }
        out.push(self.cross_neighbor(u));
    }

    fn degree(&self, _u: NodeId) -> usize {
        self.n as usize
    }

    fn is_edge(&self, u: NodeId, v: NodeId) -> bool {
        if hamming(u, v) != 1 {
            return false;
        }
        let i = (u ^ v).trailing_zeros();
        if i == self.class_bit() {
            true // cross-edge
        } else if i < self.cluster_dim() {
            self.class_of(u) == Class::Zero && self.class_of(v) == Class::Zero
        } else {
            self.class_of(u) == Class::One && self.class_of(v) == Class::One
        }
    }

    fn num_edges(&self) -> usize {
        // degree n, 2^(2n−1) nodes → n · 2^(2n−2) edges.
        (self.n as usize) << (2 * self.n - 2)
    }

    fn is_cross_edge(&self, u: NodeId, v: NodeId) -> bool {
        // An edge joins distinct classes exactly when it is the unique
        // cross edge (cluster edges never touch the class bit).
        u ^ v == 1usize << self.class_bit()
    }

    fn max_ports(&self) -> u32 {
        self.n
    }

    /// Ports follow [`Topology::neighbors_into`] order: cluster dimension
    /// `i` is port `i` (the flipped raw bit is `i` for class 0, `n−1+i`
    /// for class 1), the cross edge is port `n−1`.
    fn port_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if !self.is_edge(u, v) {
            return None;
        }
        let i = (u ^ v).trailing_zeros();
        Some(if i == self.class_bit() {
            self.cluster_dim()
        } else if i < self.cluster_dim() {
            i
        } else {
            i - self.cluster_dim()
        })
    }

    fn name(&self) -> String {
        format!("D_{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    #[test]
    fn counts_match_formulas() {
        for n in 1..=5 {
            let d = DualCube::new(n);
            assert_eq!(d.num_nodes(), 1 << (2 * n - 1), "nodes of D_{n}");
            assert_eq!(d.num_edges(), (n as usize) << (2 * n - 2), "edges of D_{n}");
            assert_eq!(
                graph::degree_histogram(&d),
                vec![(n as usize, 1 << (2 * n - 1))]
            );
        }
    }

    #[test]
    fn graph_contract_holds() {
        for n in 1..=4 {
            let d = DualCube::new(n);
            assert!(graph::check_simple_undirected(&d).is_empty(), "D_{n}");
            assert!(graph::is_connected(&d), "D_{n} connected");
        }
    }

    #[test]
    fn diameter_matches_formula() {
        for n in 1..=4 {
            let d = DualCube::new(n);
            assert_eq!(
                graph::diameter(&d),
                d.diameter_formula(),
                "diameter of D_{n}"
            );
            // Vertex-transitivity shortcut agrees with the exhaustive diameter.
            assert_eq!(graph::diameter_vertex_transitive(&d), d.diameter_formula());
        }
    }

    #[test]
    fn address_round_trip() {
        for n in 1..=4 {
            let d = DualCube::new(n);
            for u in 0..d.num_nodes() {
                let a = d.address(u);
                assert_eq!(d.from_address(a), u, "D_{n} node {u}");
            }
        }
    }

    #[test]
    fn address_fields_of_figure_one() {
        // Figure 1 depicts D_2: 8 nodes with 3-bit ids (class, cluster, node).
        let d = DualCube::new(2);
        // Node 0b011 is class 0, cluster 1, node 1.
        assert_eq!(d.address(0b011), Address::new(Class::Zero, 1, 1));
        // Node 0b110 is class 1; part I (low bit, 0) is the cluster id and
        // part II (middle bit, 1) the node id.
        assert_eq!(d.address(0b110), Address::new(Class::One, 0, 1));
    }

    #[test]
    fn cross_neighbor_differs_only_in_class_bit() {
        let d = DualCube::new(3);
        for u in 0..d.num_nodes() {
            let v = d.cross_neighbor(u);
            assert_eq!(u ^ v, 1 << d.class_bit());
            assert!(d.is_edge(u, v));
            assert_eq!(d.cross_neighbor(v), u);
            assert_ne!(d.class_of(u), d.class_of(v));
        }
    }

    #[test]
    fn cluster_neighbors_stay_in_cluster() {
        let d = DualCube::new(4);
        for u in (0..d.num_nodes()).step_by(7) {
            for i in 0..d.cluster_dim() {
                let v = d.cluster_neighbor(u, i);
                assert!(d.is_edge(u, v), "u={u} i={i}");
                assert!(d.same_cluster(u, v));
                assert_eq!(d.node_id(u) ^ d.node_id(v), 1 << i);
                assert_eq!(d.cluster_neighbor(v, i), u);
            }
        }
    }

    #[test]
    fn no_edges_between_clusters_of_same_class() {
        let d = DualCube::new(3);
        for u in 0..d.num_nodes() {
            for v in d.neighbors(u) {
                // Every edge is intra-cluster or a cross-edge.
                assert!(
                    d.same_cluster(u, v) || d.class_of(u) != d.class_of(v),
                    "edge {u}-{v} joins distinct clusters of one class"
                );
            }
        }
    }

    #[test]
    fn cluster_members_partition_the_nodes() {
        let d = DualCube::new(3);
        let mut seen = vec![false; d.num_nodes()];
        for ci in 0..2 * d.clusters_per_class() {
            let members = d.cluster_members(ci);
            assert_eq!(members.len(), d.cluster_size());
            for (pos, &u) in members.iter().enumerate() {
                assert_eq!(d.cluster_index(u), ci);
                assert_eq!(d.node_id(u), pos);
                assert!(!seen[u], "node {u} in two clusters");
                seen[u] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn each_cluster_is_a_hypercube() {
        // Cluster edges restricted to a cluster form Q_{n-1}.
        let d = DualCube::new(4);
        let members = d.cluster_members(5);
        for (i, &u) in members.iter().enumerate() {
            for (j, &v) in members.iter().enumerate() {
                let adjacent = d.is_edge(u, v);
                assert_eq!(adjacent, (i ^ j).count_ones() == 1, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn linear_index_is_a_bijection_and_consecutive_per_cluster() {
        for n in 2..=4 {
            let d = DualCube::new(n);
            let mut seen = vec![false; d.num_nodes()];
            for u in 0..d.num_nodes() {
                let idx = d.linear_index(u);
                assert!(!seen[idx]);
                seen[idx] = true;
                assert_eq!(d.from_linear_index(idx), u);
            }
            // Consecutive within each cluster, ordered by node id.
            for ci in 0..2 * d.clusters_per_class() {
                let members = d.cluster_members(ci);
                let base = d.linear_index(members[0]);
                for (pos, &u) in members.iter().enumerate() {
                    assert_eq!(d.linear_index(u), base + pos, "cluster {ci}");
                }
            }
        }
    }

    #[test]
    fn class_zero_linear_index_is_identity() {
        let d = DualCube::new(3);
        for u in 0..d.num_nodes() {
            if d.class_of(u) == Class::Zero {
                assert_eq!(d.linear_index(u), u);
            } else {
                assert!(d.linear_index(u) >= d.num_nodes() / 2);
            }
        }
    }

    #[test]
    fn distance_formula_matches_bfs() {
        for n in 2..=4 {
            let d = DualCube::new(n);
            for u in (0..d.num_nodes()).step_by(if n == 4 { 11 } else { 1 }) {
                let bfs = graph::bfs_distances(&d, u);
                for (v, &dist) in bfs.iter().enumerate() {
                    assert_eq!(d.distance_formula(u, v), dist, "D_{n} distance({u},{v})");
                }
            }
        }
    }

    #[test]
    fn d1_is_k2() {
        let d = DualCube::new(1);
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_edges(), 1);
        assert!(d.is_edge(0, 1));
        assert_eq!(d.diameter_formula(), 1);
        assert_eq!(graph::diameter(&d), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn n_zero_rejected() {
        DualCube::new(0);
    }
}
