//! The structured address of a dual-cube node: class indicator, cluster id
//! and node id (paper, Section 2).
//!
//! A `D_n` node id is a `(2n−1)`-bit string split into three parts:
//!
//! ```text
//!   bit 2n−2      bits 2n−3 … n−1        bits n−2 … 0
//!   ┌───────┐  ┌───────────────────┐  ┌───────────────────┐
//!   │ class │  │  part II (n−1 b)  │  │  part I  (n−1 b)  │
//!   └───────┘  └───────────────────┘  └───────────────────┘
//! ```
//!
//! For a **class-0** node, part I is the node id inside its `(n−1)`-cube
//! cluster and part II is the cluster id. For a **class-1** node the roles
//! are swapped.

use std::fmt;

/// The class of a dual-cube node (the leftmost address bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    /// Class 0: part I = node id, part II = cluster id.
    Zero,
    /// Class 1: part I = cluster id, part II = node id.
    One,
}

impl Class {
    /// The class encoded by `bit` (`false` → `Zero`).
    #[inline]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Class::One
        } else {
            Class::Zero
        }
    }

    /// The value of the class-indicator bit.
    #[inline]
    pub fn as_bit(self) -> bool {
        self == Class::One
    }

    /// 0 or 1 as an integer, as used in node-id arithmetic.
    #[inline]
    pub fn as_usize(self) -> usize {
        self as usize
    }

    /// The opposite class.
    #[inline]
    pub fn other(self) -> Self {
        match self {
            Class::Zero => Class::One,
            Class::One => Class::Zero,
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_usize())
    }
}

/// A decoded dual-cube address.
///
/// `cluster` and `node` are both `(n−1)`-bit values; which raw bit-field
/// each occupies depends on `class` (see the module docs). Construct raw
/// ids with [`crate::DualCube::from_address`] so the field placement stays
/// in one audited location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Address {
    /// The class indicator (leftmost bit).
    pub class: Class,
    /// Which `(n−1)`-cube cluster of that class the node belongs to.
    pub cluster: usize,
    /// The node's position inside its cluster (a hypercube vertex id).
    pub node: usize,
}

impl Address {
    /// Convenience constructor.
    #[inline]
    pub fn new(class: Class, cluster: usize, node: usize) -> Self {
        Address {
            class,
            cluster,
            node,
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(class {}, cluster {}, node {})",
            self.class, self.cluster, self.node
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_bit_round_trip() {
        assert_eq!(Class::from_bit(false), Class::Zero);
        assert_eq!(Class::from_bit(true), Class::One);
        assert!(!Class::Zero.as_bit());
        assert!(Class::One.as_bit());
        assert_eq!(Class::Zero.as_usize(), 0);
        assert_eq!(Class::One.as_usize(), 1);
    }

    #[test]
    fn other_is_involutive() {
        assert_eq!(Class::Zero.other(), Class::One);
        assert_eq!(Class::One.other().other(), Class::One);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Class::One.to_string(), "1");
        assert_eq!(
            Address::new(Class::Zero, 3, 5).to_string(),
            "(class 0, cluster 3, node 5)"
        );
    }
}
