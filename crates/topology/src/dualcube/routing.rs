//! Shortest-path routing in the dual-cube (paper, Section 2: "The routing
//! algorithm in dual-cube is also very simple").
//!
//! Three cases, following the distance formula:
//!
//! * **Same cluster** — correct the differing node-id bits in dimension
//!   order (pure hypercube routing). Length = Hamming distance.
//! * **Distinct classes** — inside the source cluster, steer the node-id
//!   field to the value that makes the cross-edge land in the destination
//!   cluster; cross; then hypercube-route inside the destination cluster.
//!   Length = Hamming distance (the class bit accounts for the cross hop).
//! * **Same class, distinct clusters** — as above but with a second
//!   cross-edge to come back to the original class. Length = Hamming + 2.

use super::DualCube;
use crate::traits::{NodeId, Routed, Topology};

impl DualCube {
    /// Extends `path` with hypercube hops inside `cur`'s cluster until the
    /// node-id field equals `target_node_id`, correcting bits from low
    /// dimension to high. Returns the final node.
    fn route_within_cluster(
        &self,
        path: &mut Vec<NodeId>,
        mut cur: NodeId,
        target_node_id: usize,
    ) -> NodeId {
        for i in 0..self.cluster_dim() {
            if (self.node_id(cur) ^ target_node_id) >> i & 1 == 1 {
                cur = self.cluster_neighbor(cur, i);
                path.push(cur);
            }
        }
        debug_assert_eq!(self.node_id(cur), target_node_id);
        cur
    }
}

impl Routed for DualCube {
    fn route(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        assert!(u < self.num_nodes() && v < self.num_nodes());
        let mut path = vec![u];
        if u == v {
            return path;
        }
        let (cu, cv) = (self.class_of(u), self.class_of(v));
        if cu == cv && self.cluster_id(u) == self.cluster_id(v) {
            // Case 1: same cluster.
            let end = self.route_within_cluster(&mut path, u, self.node_id(v));
            debug_assert_eq!(end, v);
            return path;
        }
        if cu != cv {
            // Case 2: distinct classes. After crossing, the source's
            // node-id field becomes the destination-side cluster id and
            // vice versa; so first make our node id equal v's cluster id.
            let mut cur = self.route_within_cluster(&mut path, u, self.cluster_id(v));
            cur = self.cross_neighbor(cur);
            path.push(cur);
            debug_assert!(self.same_cluster(cur, v));
            let end = self.route_within_cluster(&mut path, cur, self.node_id(v));
            debug_assert_eq!(end, v);
            return path;
        }
        // Case 3: same class, distinct clusters. Route to the intermediate
        // cluster of the other class whose id is v's *node id*... more
        // precisely: cross over, fix the (now node-id) field that encodes
        // the destination cluster, and cross back.
        //
        // Walking it through for class 0 (class 1 is symmetric): u =
        // (0, A2, A1), v = (0, B2, B1). Set part I to B1 (our node id →
        // B1), cross to (1, A2, B1) — a node of class-1 cluster B1 whose
        // node id is A2 — fix part II to B2 inside that cluster, cross
        // back to (0, B2, B1) = v.
        let mut cur = self.route_within_cluster(&mut path, u, self.node_id(v));
        cur = self.cross_neighbor(cur);
        path.push(cur);
        cur = self.route_within_cluster(&mut path, cur, self.cluster_id(v));
        cur = self.cross_neighbor(cur);
        path.push(cur);
        debug_assert_eq!(cur, v);
        path
    }

    fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        self.distance_formula(u, v)
    }
}

/// Routing in the recursive presentation: translate to standard ids, route
/// there, translate back. The translation is a graph isomorphism, so paths
/// remain valid shortest paths (tested).
impl Routed for super::RecDualCube {
    fn route(&self, r: NodeId, s: NodeId) -> Vec<NodeId> {
        let d = self.standard();
        d.route(d.rec_to_std(r), d.rec_to_std(s))
            .into_iter()
            .map(|u| d.std_to_rec(u))
            .collect()
    }

    fn distance(&self, r: NodeId, s: NodeId) -> u32 {
        let d = self.standard();
        d.distance_formula(d.rec_to_std(r), d.rec_to_std(s))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Class, RecDualCube};
    use super::*;
    use crate::graph;

    fn assert_path_valid<T: Topology>(t: &T, path: &[NodeId], u: NodeId, v: NodeId) {
        assert_eq!(path[0], u);
        assert_eq!(*path.last().unwrap(), v);
        for w in path.windows(2) {
            assert!(t.is_edge(w[0], w[1]), "invalid hop {w:?} in {}", t.name());
        }
    }

    #[test]
    fn routes_are_valid_and_shortest() {
        for n in 2..=4 {
            let d = DualCube::new(n);
            let stride = if n == 4 { 13 } else { 1 };
            for u in (0..d.num_nodes()).step_by(stride) {
                let bfs = graph::bfs_distances(&d, u);
                for (v, &dist) in bfs.iter().enumerate() {
                    let path = d.route(u, v);
                    assert_path_valid(&d, &path, u, v);
                    assert_eq!(
                        path.len() as u32 - 1,
                        dist,
                        "D_{n}: route {u}→{v} not shortest"
                    );
                    assert_eq!(d.distance(u, v), dist);
                }
            }
        }
    }

    #[test]
    fn route_to_self_is_trivial() {
        let d = DualCube::new(3);
        assert_eq!(d.route(17, 17), vec![17]);
        assert_eq!(d.distance(17, 17), 0);
    }

    #[test]
    fn recursive_presentation_routes_are_valid_and_shortest() {
        let rec = RecDualCube::new(3);
        for r in 0..rec.num_nodes() {
            let bfs = graph::bfs_distances(&rec, r);
            for (s, &dist) in bfs.iter().enumerate() {
                let path = rec.route(r, s);
                assert_path_valid(&rec, &path, r, s);
                assert_eq!(path.len() as u32 - 1, dist);
                assert_eq!(rec.distance(r, s), dist);
            }
        }
    }

    #[test]
    fn cross_class_route_uses_exactly_one_cross_edge() {
        let d = DualCube::new(4);
        let u = d.from_parts(Class::Zero, 5, 3);
        let v = d.from_parts(Class::One, 6, 2);
        let path = d.route(u, v);
        let crossings = path
            .windows(2)
            .filter(|w| d.class_of(w[0]) != d.class_of(w[1]))
            .count();
        assert_eq!(crossings, 1);
    }

    #[test]
    fn same_class_route_uses_exactly_two_cross_edges() {
        let d = DualCube::new(4);
        let u = d.from_parts(Class::One, 1, 7);
        let v = d.from_parts(Class::One, 4, 2);
        let path = d.route(u, v);
        let crossings = path
            .windows(2)
            .filter(|w| d.class_of(w[0]) != d.class_of(w[1]))
            .count();
        assert_eq!(crossings, 2);
        assert_eq!(path.len() as u32 - 1, d.distance_formula(u, v));
    }
}
