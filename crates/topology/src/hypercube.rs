//! The binary hypercube `Q_m`, the reference network the paper's algorithms
//! are measured against (Sections 3 and 5).

use crate::bits::{flip, hamming};
use crate::traits::{NodeId, Routed, Topology};

/// The `m`-dimensional binary hypercube: `2^m` nodes, two nodes adjacent
/// iff their ids differ in exactly one bit.
///
/// ```
/// use dc_topology::{Hypercube, Topology, Routed};
/// let q = Hypercube::new(3);
/// assert_eq!(q.num_nodes(), 8);
/// assert!(q.is_edge(0b000, 0b100));
/// assert_eq!(q.distance(0b000, 0b111), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

/// Largest supported dimension; keeps `2^m` well inside `usize` and the
/// simulator's memory budget.
pub const MAX_HYPERCUBE_DIM: u32 = 30;

impl Hypercube {
    /// Creates `Q_m`. Panics if `m` is 0 or exceeds [`MAX_HYPERCUBE_DIM`]
    /// (`Q_0` is a single node with no edges — never useful here and a
    /// common off-by-one trap, so it is rejected loudly).
    pub fn new(dim: u32) -> Self {
        assert!(
            (1..=MAX_HYPERCUBE_DIM).contains(&dim),
            "hypercube dimension {dim} out of range 1..={MAX_HYPERCUBE_DIM}"
        );
        Hypercube { dim }
    }

    /// The dimension `m`.
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The neighbour of `u` across dimension `i` (`0 ≤ i < m`).
    #[inline]
    pub fn neighbor(&self, u: NodeId, i: u32) -> NodeId {
        debug_assert!(i < self.dim);
        flip(u, i)
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1usize << self.dim
    }

    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        debug_assert!(u < self.num_nodes());
        out.clear();
        out.extend((0..self.dim).map(|i| flip(u, i)));
    }

    fn degree(&self, _u: NodeId) -> usize {
        self.dim as usize
    }

    fn is_edge(&self, u: NodeId, v: NodeId) -> bool {
        hamming(u, v) == 1
    }

    fn num_edges(&self) -> usize {
        (self.dim as usize) << (self.dim - 1)
    }

    fn max_ports(&self) -> u32 {
        self.dim
    }

    /// Port `i` is dimension `i` — the position of `flip(u, i)` in
    /// [`Topology::neighbors_into`]'s output.
    fn port_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        (hamming(u, v) == 1).then(|| (u ^ v).trailing_zeros())
    }

    fn name(&self) -> String {
        format!("Q_{}", self.dim)
    }
}

impl Routed for Hypercube {
    /// E-cube (dimension-order) routing: correct the differing bits from
    /// low dimension to high. Always a shortest path.
    fn route(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![u];
        let mut cur = u;
        for i in 0..self.dim {
            if (cur ^ v) >> i & 1 == 1 {
                cur = flip(cur, i);
                path.push(cur);
            }
        }
        debug_assert_eq!(cur, v);
        path
    }

    fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        hamming(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    #[test]
    fn counts_match_formulas() {
        for m in 1..=8 {
            let q = Hypercube::new(m);
            assert_eq!(q.num_nodes(), 1 << m);
            assert_eq!(q.num_edges(), (m as usize) * (1 << m) / 2);
            assert_eq!(q.degree(0), m as usize);
        }
    }

    #[test]
    fn adjacency_is_single_bit_difference() {
        let q = Hypercube::new(4);
        for u in 0..16 {
            for v in 0..16 {
                assert_eq!(q.is_edge(u, v), (u ^ v).count_ones() == 1);
            }
        }
    }

    #[test]
    fn graph_contract_holds() {
        for m in 1..=6 {
            assert!(graph::check_simple_undirected(&Hypercube::new(m)).is_empty());
        }
    }

    #[test]
    fn route_is_shortest_and_valid() {
        let q = Hypercube::new(5);
        for u in [0usize, 7, 21, 31] {
            for v in 0..32 {
                let path = q.route(u, v);
                assert_eq!(path[0], u);
                assert_eq!(*path.last().unwrap(), v);
                assert_eq!(path.len() as u32 - 1, q.distance(u, v));
                for w in path.windows(2) {
                    assert!(q.is_edge(w[0], w[1]), "invalid hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn distance_equals_bfs() {
        let q = Hypercube::new(5);
        let bfs = graph::bfs_distances(&q, 9);
        for (v, &d) in bfs.iter().enumerate() {
            assert_eq!(q.distance(9, v), d);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_dimension_rejected() {
        Hypercube::new(0);
    }

    #[test]
    fn neighbor_flips_requested_dimension() {
        let q = Hypercube::new(6);
        assert_eq!(q.neighbor(0b010101, 3), 0b011101);
    }
}
