//! Low-level bit manipulation helpers shared by all topologies.
//!
//! Node identifiers throughout this workspace are plain `usize` values whose
//! binary representation is structured (class bit, cluster id, node id, …).
//! These helpers keep that bit surgery in one tested place.

/// Returns bit `i` of `x` as a boolean.
#[inline]
pub fn bit(x: usize, i: u32) -> bool {
    (x >> i) & 1 == 1
}

/// Returns `x` with bit `i` flipped.
#[inline]
pub fn flip(x: usize, i: u32) -> usize {
    x ^ (1usize << i)
}

/// Returns `x` with bit `i` set to `v`.
#[inline]
pub fn with_bit(x: usize, i: u32, v: bool) -> usize {
    if v {
        x | (1usize << i)
    } else {
        x & !(1usize << i)
    }
}

/// Number of bit positions in which `a` and `b` differ.
#[inline]
pub fn hamming(a: usize, b: usize) -> u32 {
    (a ^ b).count_ones()
}

/// A mask with the low `width` bits set. `width` must be < `usize::BITS`.
#[inline]
pub fn mask(width: u32) -> usize {
    debug_assert!(width < usize::BITS);
    (1usize << width) - 1
}

/// Extracts the `width`-bit field of `x` starting at bit `lo`.
#[inline]
pub fn field(x: usize, lo: u32, width: u32) -> usize {
    (x >> lo) & mask(width)
}

/// Returns `x` with the `width`-bit field at bit `lo` replaced by `val`.
///
/// `val` must fit in `width` bits.
#[inline]
pub fn with_field(x: usize, lo: u32, width: u32, val: usize) -> usize {
    debug_assert!(val <= mask(width), "field value does not fit");
    (x & !(mask(width) << lo)) | (val << lo)
}

/// Formats the low `width` bits of `x` as a binary string, most significant
/// bit first. Used by the figure-reproduction printers.
pub fn to_binary(x: usize, width: u32) -> String {
    (0..width)
        .rev()
        .map(|i| if bit(x, i) { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reads_each_position() {
        let x = 0b1010_0110usize;
        let expect = [false, true, true, false, false, true, false, true];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(bit(x, i as u32), e, "bit {i}");
        }
    }

    #[test]
    fn flip_is_involutive() {
        for x in 0..64usize {
            for i in 0..6 {
                assert_eq!(flip(flip(x, i), i), x);
                assert_ne!(flip(x, i), x);
            }
        }
    }

    #[test]
    fn with_bit_sets_and_clears() {
        assert_eq!(with_bit(0b1000, 1, true), 0b1010);
        assert_eq!(with_bit(0b1010, 1, false), 0b1000);
        assert_eq!(with_bit(0b1010, 1, true), 0b1010);
    }

    #[test]
    fn hamming_counts_differing_bits() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0b1011, 0b0010), 2);
        assert_eq!(hamming(usize::MAX, 0), usize::BITS);
    }

    #[test]
    fn field_round_trips_through_with_field() {
        let x = 0b1100_1011usize;
        for lo in 0..6 {
            for width in 1..4 {
                let f = field(x, lo, width);
                assert_eq!(with_field(x, lo, width, f), x);
                assert_eq!(field(with_field(x, lo, width, 0), lo, width), 0);
            }
        }
    }

    #[test]
    fn mask_has_expected_width() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(5), 0b11111);
    }

    #[test]
    fn to_binary_is_msb_first() {
        assert_eq!(to_binary(0b101, 5), "00101");
        assert_eq!(to_binary(0, 3), "000");
        assert_eq!(to_binary(7, 3), "111");
    }
}
