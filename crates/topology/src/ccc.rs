//! Cube-connected cycles `CCC(d)` (Preparata & Vuillemin, the paper's
//! reference \[9\]): the bounded-degree hypercube derivative the dual-cube is
//! positioned against in Section 1 ("Dual-cube can be viewed as an
//! improvement over CCC networks").
//!
//! `CCC(d)` replaces each vertex of `Q_d` with a `d`-cycle; node `(x, p)`
//! (cube vertex `x`, cycle position `p`) is adjacent to its two cycle
//! neighbours and, via its *rung* edge, to `(x ⊕ 2^p, p)`. Degree is 3
//! (for `d ≥ 3`), independent of size — the property the dual-cube trades
//! against: `D_n` keeps degree `n` but gets hypercube-like routing and far
//! smaller diameter for the same node budget.

use crate::bits::flip;
use crate::traits::{NodeId, Topology};

/// The cube-connected-cycles network `CCC(d)`: `d·2^d` nodes of degree 3.
///
/// Node ids are `x * d + p` for cube vertex `x ∈ 0..2^d` and cycle
/// position `p ∈ 0..d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeConnectedCycles {
    d: u32,
}

/// Largest supported `d`.
pub const MAX_CCC_D: u32 = 20;

impl CubeConnectedCycles {
    /// Creates `CCC(d)`. Requires `3 ≤ d ≤` [`MAX_CCC_D`] — for `d < 3`
    /// the cycle degenerates and the graph is not 3-regular.
    pub fn new(d: u32) -> Self {
        assert!(
            (3..=MAX_CCC_D).contains(&d),
            "CCC parameter {d} out of range 3..={MAX_CCC_D}"
        );
        CubeConnectedCycles { d }
    }

    /// The underlying hypercube dimension `d`.
    #[inline]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Decomposes a node id into `(cube vertex, cycle position)`.
    #[inline]
    pub fn coords(&self, u: NodeId) -> (usize, u32) {
        (u / self.d as usize, (u % self.d as usize) as u32)
    }

    /// Composes `(cube vertex, cycle position)` into a node id.
    #[inline]
    pub fn node(&self, x: usize, p: u32) -> NodeId {
        debug_assert!(x < (1usize << self.d) && p < self.d);
        x * self.d as usize + p as usize
    }

    /// Known diameter of `CCC(d)`: `2d + ⌊d/2⌋ − 2` for `d ≥ 4`, and 6
    /// for `d = 3` (Preparata & Vuillemin). Verified against BFS in tests.
    pub fn diameter_formula(&self) -> u32 {
        if self.d == 3 {
            6
        } else {
            2 * self.d + self.d / 2 - 2
        }
    }
}

impl Topology for CubeConnectedCycles {
    fn num_nodes(&self) -> usize {
        (self.d as usize) << self.d
    }

    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        debug_assert!(u < self.num_nodes());
        out.clear();
        let (x, p) = self.coords(u);
        let d = self.d;
        out.push(self.node(x, (p + 1) % d)); // cycle forward
        out.push(self.node(x, (p + d - 1) % d)); // cycle backward
        out.push(self.node(flip(x, p), p)); // rung
    }

    fn degree(&self, _u: NodeId) -> usize {
        3
    }

    /// Closed-form bit test, overriding the default
    /// `neighbors(u).contains(&v)` — which allocates a fresh `Vec` per
    /// query and sits inside the simulator's per-cycle validation loop.
    fn is_edge(&self, u: NodeId, v: NodeId) -> bool {
        debug_assert!(u < self.num_nodes() && v < self.num_nodes());
        let (x, p) = self.coords(u);
        let (y, q) = self.coords(v);
        if x == y {
            // Cycle edge: positions adjacent on the d-cycle. (d ≥ 3, so
            // the two directions are distinct and u == v never matches.)
            (p + 1) % self.d == q || (q + 1) % self.d == p
        } else {
            // Rung edge: same position, cube vertices differ in bit p.
            p == q && y == flip(x, p)
        }
    }

    /// 3-regular: `3·d·2^d / 2` edges, without the handshake-lemma sweep.
    fn num_edges(&self) -> usize {
        3 * self.num_nodes() / 2
    }

    fn max_ports(&self) -> u32 {
        3
    }

    /// [`Topology::neighbors_into`] order: port 0 cycle-forward, port 1
    /// cycle-backward, port 2 rung. (`d ≥ 3`, so forward and backward
    /// never coincide.)
    fn port_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if !self.is_edge(u, v) {
            return None;
        }
        let (x, p) = self.coords(u);
        let (y, q) = self.coords(v);
        Some(if x != y {
            2
        } else if (p + 1) % self.d == q {
            0
        } else {
            1
        })
    }

    fn name(&self) -> String {
        format!("CCC({})", self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    #[test]
    fn counts_match_formulas() {
        for d in 3..=6 {
            let c = CubeConnectedCycles::new(d);
            assert_eq!(c.num_nodes(), (d as usize) << d);
            assert_eq!(c.num_edges(), 3 * c.num_nodes() / 2);
            assert_eq!(graph::degree_histogram(&c), vec![(3, c.num_nodes())]);
        }
    }

    #[test]
    fn graph_contract_holds() {
        for d in 3..=5 {
            let c = CubeConnectedCycles::new(d);
            assert!(graph::check_simple_undirected(&c).is_empty());
            assert!(graph::is_connected(&c));
        }
    }

    #[test]
    fn coords_round_trip() {
        let c = CubeConnectedCycles::new(4);
        for u in 0..c.num_nodes() {
            let (x, p) = c.coords(u);
            assert_eq!(c.node(x, p), u);
        }
    }

    #[test]
    fn diameter_matches_formula() {
        for d in 3..=6 {
            let c = CubeConnectedCycles::new(d);
            assert_eq!(graph::diameter(&c), c.diameter_formula(), "CCC({d})");
        }
    }

    /// The closed-form `is_edge` must agree with the allocating default
    /// (`neighbors(u).contains(&v)`) on every pair, including the d = 3
    /// wrap-around cycle and all non-edges.
    #[test]
    fn closed_form_is_edge_matches_neighbor_lists() {
        for d in 3..=5 {
            let c = CubeConnectedCycles::new(d);
            let mut nbrs = Vec::new();
            for u in 0..c.num_nodes() {
                c.neighbors_into(u, &mut nbrs);
                for v in 0..c.num_nodes() {
                    assert_eq!(
                        c.is_edge(u, v),
                        nbrs.contains(&v),
                        "CCC({d}) pair ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn rung_edges_flip_the_cycle_position_bit() {
        let c = CubeConnectedCycles::new(4);
        let u = c.node(0b0110, 2);
        assert!(c.is_edge(u, c.node(0b0010, 2)));
        assert!(!c.is_edge(u, c.node(0b0111, 2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degenerate_d_rejected() {
        CubeConnectedCycles::new(2);
    }
}
