//! Shard maps: contiguous node-range partitions along the dual-cube's
//! Section-4 recursion.
//!
//! Section 4 of the paper presents `D_n` recursively: four vertex-disjoint
//! copies of `D_(n-1)`, glued by cross-edges and the two interleaved
//! dimensions introduced at level `n`. Applied `k` times, the recursion
//! partitions the machine into `S = 4^k` equal node ranges keyed by the
//! **top class/cube-id address bits** — every dimension edge below the
//! selector bits stays inside one copy, so shard-local traffic dominates
//! and only cross-edges plus the interleaved top dimensions ever leave a
//! shard. (The locality argument mirrors Wang & Wu's Hales-numbered
//! hypercube sharding and the bounded boundary connectivity of Zhao, Hao
//! & Cheng — see PAPERS.md.) Because node ids are plain binary addresses,
//! "top address bits" means *contiguous id ranges*: a [`ShardMap`] is
//! just `len` split into `count` equal chunks, which keeps `shard_of` a
//! single division and keeps compiled schedules (dense, dst-indexed)
//! shard-major for free.
//!
//! The simulator uses a shard map to give each pool worker a fixed,
//! contiguous slice of every hot table (states, inbox, claims, link
//! counters) — stable affinity with first-touch allocation — and to stage
//! the thin seam traffic into per-shard-pair exchange buffers instead of
//! contending on atomics. `ShardMap::new(len, 1)` is the degenerate
//! single-shard map, which the engine treats as the bitwise reference.

use crate::traits::NodeId;

/// A partition of `0..len` into `count` contiguous, equal-size shards
/// (the last may be short; trailing shards may be empty when
/// `count > len`).
///
/// `count` must be `1` or a power of four, matching the paper's
/// four-copies recursion — see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    len: usize,
    count: usize,
    chunk: usize,
}

impl ShardMap {
    /// Partition `0..len` into `count` shards. Panics unless `count` is
    /// `1` or a power of four (`4^k` for `k ≥ 1`).
    pub fn new(len: usize, count: usize) -> Self {
        assert!(
            count >= 1 && count.is_power_of_two() && count.trailing_zeros().is_multiple_of(2),
            "shard count must be 1 or a power of 4, got {count}"
        );
        let chunk = len.div_ceil(count).max(1);
        ShardMap { len, count, chunk }
    }

    /// Number of elements partitioned.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards (`1` or `4^k`).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Elements per shard (the last shard may hold fewer).
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The shard owning node `u`. One division — the hot-path cost of
    /// binning a boundary message.
    #[inline]
    pub fn shard_of(&self, u: NodeId) -> usize {
        u / self.chunk
    }

    /// The node range shard `s` owns (possibly empty for trailing shards
    /// when `count > len`).
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        let start = (s * self.chunk).min(self.len);
        let end = ((s + 1) * self.chunk).min(self.len);
        start..end
    }

    /// Whether the edge `(u, v)` crosses a shard boundary — seam traffic
    /// that must be staged through an exchange buffer rather than written
    /// shard-locally.
    #[inline]
    pub fn is_boundary(&self, u: NodeId, v: NodeId) -> bool {
        self.shard_of(u) != self.shard_of(v)
    }

    /// Shard-aligned dispatch bounds for `slots` workers: ascending
    /// offsets `b_0 = 0 < b_1 < … < b_m = len` (one entry more than the
    /// number of non-empty dispatch slots, `m ≤ min(slots, count)`),
    /// where every `[b_i, b_{i+1})` is a whole number of shards. Workers
    /// get maximally even *shard* counts, so worker `k` touches the same
    /// shards every cycle (stable affinity). Consecutive duplicate
    /// bounds (empty trailing shards) are elided, so the result is
    /// strictly ascending; a map with `len == 0` yields `[0, 0]`'s
    /// degenerate single empty slot — callers gate on `m < 2` and run
    /// inline.
    pub fn slot_bounds_into(&self, slots: usize, out: &mut Vec<usize>) {
        out.clear();
        let m = slots.clamp(1, self.count);
        out.push(0);
        for k in 1..=m {
            let shard = k * self.count / m;
            let b = (shard * self.chunk).min(self.len);
            if b > *out.last().expect("seeded with 0") {
                out.push(b);
            }
        }
        if out.len() == 1 {
            // All shards empty (len == 0): keep the two-entry shape.
            out.push(self.len);
        }
    }

    /// Allocating convenience form of [`ShardMap::slot_bounds_into`].
    pub fn slot_bounds(&self, slots: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.slot_bounds_into(slots, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_tile_the_node_range_exactly() {
        for &(len, count) in &[(128usize, 4usize), (128, 16), (100, 4), (5, 16), (1, 1)] {
            let map = ShardMap::new(len, count);
            let mut covered = 0;
            for s in 0..map.count() {
                let r = map.range(s);
                assert_eq!(r.start, covered, "shard {s} of ({len},{count})");
                for u in r.clone() {
                    assert_eq!(map.shard_of(u), s);
                }
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    #[should_panic(expected = "power of 4")]
    fn rejects_non_power_of_four_counts() {
        ShardMap::new(64, 8);
    }

    #[test]
    fn slot_bounds_are_shard_aligned_and_cover() {
        let map = ShardMap::new(100, 16); // chunk 7, last shard short
        for slots in 1..=20 {
            let b = map.slot_bounds(slots);
            assert_eq!(*b.first().unwrap(), 0, "at {slots} slots");
            assert_eq!(*b.last().unwrap(), 100, "at {slots} slots");
            assert!(b.windows(2).all(|w| w[0] < w[1]), "ascending at {slots}");
            assert!(b.len() - 1 <= slots.min(16));
            for &x in &b[..b.len() - 1] {
                assert_eq!(x % map.chunk(), 0, "bound {x} not shard-aligned");
            }
        }
    }

    #[test]
    fn dual_cube_cross_edges_are_class_boundary_seams() {
        use crate::{DualCube, Topology};
        // With S = 4 the top two address bits select the shard, so the
        // class bit (the topmost) differs exactly on cross-edges: every
        // cross-edge is seam traffic, and dimension edges below the
        // selector bits never are. (Class-1 cluster edges can touch the
        // second selector bit, so *some* cluster traffic is seam too —
        // but past the smallest sizes locality dominates.)
        let d = DualCube::new(4); // 128 nodes
        let map = ShardMap::new(d.num_nodes(), 4);
        let mut seam = 0usize;
        let mut local = 0usize;
        for u in 0..d.num_nodes() {
            for v in d.neighbors(u) {
                if d.is_cross_edge(u, v) {
                    assert!(map.is_boundary(u, v), "cross edge {u}-{v} intra-shard?");
                }
                if map.is_boundary(u, v) {
                    seam += 1;
                } else {
                    local += 1;
                }
            }
        }
        assert!(seam > 0 && local > seam, "seams must be the thin side");
    }
}
