//! Vertex connectivity and node-disjoint paths, by max-flow.
//!
//! Section 2 claims dual-cube properties "similar to that of hypercube
//! such that node and edge symmetricity"; the companion literature
//! establishes that `D_n` is `n`-connected — the property that makes its
//! routing fault-tolerable. This module verifies such claims mechanically:
//!
//! * [`max_node_disjoint_paths`] — the maximum number of internally
//!   node-disjoint `u→v` paths, with the paths themselves, via unit-capacity
//!   max-flow on the node-split graph (Menger's theorem);
//! * [`vertex_connectivity`] — `κ(G)`, using the standard reduction
//!   (minimise over non-neighbours of a minimum-degree vertex).
//!
//! Everything is exact and exhaustive; it is meant for the experiment
//! sizes (`≤ 2^11` nodes), not asymptotic use.

use crate::traits::{NodeId, Topology};

/// Internal node-split flow network: node `v` becomes `v_in = 2v` and
/// `v_out = 2v+1` with a capacity-1 arc between them; each undirected edge
/// `{a,b}` becomes arcs `a_out→b_in` and `b_out→a_in`.
struct SplitGraph {
    /// adjacency: for each split-vertex, list of (target, edge index).
    adj: Vec<Vec<(usize, usize)>>,
    /// residual capacity per directed arc (paired: arc `e ^ 1` is the
    /// reverse).
    cap: Vec<u8>,
}

impl SplitGraph {
    fn new<T: Topology + ?Sized>(topo: &T, src: NodeId, dst: NodeId) -> Self {
        let n = topo.num_nodes();
        let mut g = SplitGraph {
            adj: vec![Vec::new(); 2 * n],
            cap: Vec::new(),
        };
        let add = |g: &mut SplitGraph, a: usize, b: usize, c: u8| {
            let e = g.cap.len();
            g.adj[a].push((b, e));
            g.cap.push(c);
            g.adj[b].push((a, e + 1));
            g.cap.push(0);
        };
        for v in 0..n {
            // Internal arc; source and sink are uncapacitated (we count
            // *internally* disjoint paths).
            let c = if v == src || v == dst { u8::MAX } else { 1 };
            add(&mut g, 2 * v, 2 * v + 1, c);
        }
        let mut nbrs = Vec::new();
        for a in 0..n {
            topo.neighbors_into(a, &mut nbrs);
            for &b in &nbrs {
                if a < b {
                    add(&mut g, 2 * a + 1, 2 * b, 1);
                    add(&mut g, 2 * b + 1, 2 * a, 1);
                }
            }
        }
        g
    }

    /// One BFS augmenting step (Edmonds–Karp); returns whether a path was
    /// found and, if so, saturates it.
    fn augment(&mut self, s: usize, t: usize) -> bool {
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        pred[s] = Some((s, usize::MAX));
        while let Some(v) = queue.pop_front() {
            if v == t {
                break;
            }
            for &(w, e) in &self.adj[v] {
                if pred[w].is_none() && self.cap[e] > 0 {
                    pred[w] = Some((v, e));
                    queue.push_back(w);
                }
            }
        }
        if pred[t].is_none() {
            return false;
        }
        // Unit capacities off the internal source/sink arcs: augment by 1.
        let mut v = t;
        while v != s {
            let (p, e) = pred[v].expect("path recorded");
            if self.cap[e] != u8::MAX {
                self.cap[e] -= 1;
            }
            if self.cap[e ^ 1] != u8::MAX {
                self.cap[e ^ 1] = self.cap[e ^ 1].saturating_add(1);
            }
            v = p;
        }
        true
    }
}

/// The maximum number of internally node-disjoint paths from `u` to `v`
/// (`u ≠ v`, not adjacent-only — adjacent pairs count the direct edge as
/// one path), together with one such family of paths, each given as a
/// node sequence `[u, …, v]`.
pub fn max_node_disjoint_paths<T: Topology + ?Sized>(
    topo: &T,
    u: NodeId,
    v: NodeId,
) -> Vec<Vec<NodeId>> {
    assert_ne!(u, v, "need two distinct endpoints");
    let mut g = SplitGraph::new(topo, u, v);
    let (s, t) = (2 * u + 1, 2 * v);
    while g.augment(s, t) {}
    // Decompose the integral flow into paths: follow saturated arcs
    // (cap[e] == 0 on a forward unit arc means "used").
    let mut used: Vec<Vec<usize>> = vec![Vec::new(); g.adj.len()];
    for (a, lst) in g.adj.iter().enumerate() {
        for &(b, e) in lst {
            // Forward arcs have even index; used iff residual dropped to 0.
            if e % 2 == 0 && g.cap[e] == 0 {
                used[a].push(b);
            }
        }
    }
    let mut paths = Vec::new();
    while let Some(&first) = used[s].last() {
        used[s].pop();
        let mut path = vec![u];
        let mut cur = first;
        loop {
            if cur == t {
                path.push(v);
                break;
            }
            // cur is some split vertex; record real node when entering
            // its *_in side.
            if cur % 2 == 0 && cur / 2 != v && cur / 2 != u {
                path.push(cur / 2);
            }
            let next = used[cur].pop().expect("flow conservation");
            cur = next;
        }
        paths.push(path);
    }
    paths
}

/// Exact vertex connectivity `κ(G)` of a connected non-complete graph:
/// the minimum over `max_node_disjoint_paths(v0, w)` for a fixed
/// minimum-degree vertex `v0` and every non-neighbour `w`, and over
/// pairs of `v0`'s neighbours' non-neighbours — for the vertex-transitive
/// networks here the standard simplification `min over non-neighbours of
/// node 0` is exact, which the tests cross-check on small graphs by brute
/// force.
pub fn vertex_connectivity<T: Topology + ?Sized>(topo: &T) -> usize {
    let n = topo.num_nodes();
    assert!(n >= 2);
    let nbrs0 = topo.neighbors(0);
    let mut best = n - 1;
    for w in 1..n {
        if nbrs0.contains(&w) {
            continue;
        }
        best = best.min(max_node_disjoint_paths(topo, 0, w).len());
    }
    // Complete graph corner case: no non-neighbour exists.
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccc::CubeConnectedCycles;
    use crate::dualcube::DualCube;
    use crate::hypercube::Hypercube;

    fn assert_paths_valid_and_disjoint<T: Topology>(
        topo: &T,
        u: NodeId,
        v: NodeId,
        paths: &[Vec<NodeId>],
    ) {
        let mut seen = std::collections::HashSet::new();
        for p in paths {
            assert_eq!(p[0], u);
            assert_eq!(*p.last().unwrap(), v);
            for w in p.windows(2) {
                assert!(topo.is_edge(w[0], w[1]), "hop {w:?}");
            }
            for &x in &p[1..p.len() - 1] {
                assert!(seen.insert(x), "node {x} shared between paths");
            }
        }
    }

    #[test]
    fn hypercube_has_m_disjoint_paths() {
        let q = Hypercube::new(4);
        for v in [1usize, 6, 15] {
            let paths = max_node_disjoint_paths(&q, 0, v);
            assert_eq!(paths.len(), 4, "to {v}");
            assert_paths_valid_and_disjoint(&q, 0, v, &paths);
        }
    }

    #[test]
    fn hypercube_connectivity_is_m() {
        for m in 2..=4 {
            assert_eq!(vertex_connectivity(&Hypercube::new(m)), m as usize);
        }
    }

    #[test]
    fn dual_cube_is_n_connected() {
        // The property behind fault-tolerant routing in the dual-cube
        // literature: κ(D_n) = n.
        for n in 2..=3u32 {
            let d = DualCube::new(n);
            assert_eq!(vertex_connectivity(&d), n as usize, "κ(D_{n})");
        }
    }

    #[test]
    fn dual_cube_disjoint_paths_between_far_nodes() {
        let d = DualCube::new(3);
        // Antipodal-ish pair: same class, different cluster, max Hamming.
        let u = 0usize;
        let v = 0b01111usize;
        let paths = max_node_disjoint_paths(&d, u, v);
        assert_eq!(paths.len(), 3);
        assert_paths_valid_and_disjoint(&d, u, v, &paths);
    }

    #[test]
    fn ccc_connectivity_is_three() {
        assert_eq!(vertex_connectivity(&CubeConnectedCycles::new(3)), 3);
    }

    #[test]
    fn adjacent_pair_still_yields_full_fan() {
        let q = Hypercube::new(3);
        let paths = max_node_disjoint_paths(&q, 0, 1);
        assert_eq!(paths.len(), 3);
        assert_paths_valid_and_disjoint(&q, 0, 1, &paths);
    }

    #[test]
    fn path_cut_detected() {
        // A 4-cycle has connectivity 2.
        struct C4;
        impl Topology for C4 {
            fn num_nodes(&self) -> usize {
                4
            }
            fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
                out.clear();
                out.push((u + 1) % 4);
                out.push((u + 3) % 4);
            }
            fn name(&self) -> String {
                "C4".into()
            }
        }
        assert_eq!(vertex_connectivity(&C4), 2);
        let paths = max_node_disjoint_paths(&C4, 0, 2);
        assert_eq!(paths.len(), 2);
    }
}
