//! Generic graph verification utilities: BFS, diameter, connectivity and
//! structural sanity checks.
//!
//! Every closed-form claim made by the topology implementations (distance
//! formulas, diameters, degree) is cross-checked against these brute-force
//! routines in the test suites — this is how the OCR-reconstructed dual-cube
//! definition was validated against the paper's stated properties.

use crate::traits::{NodeId, Topology};
use std::collections::VecDeque;

/// Distance (in hops) from `src` to every node, by breadth-first search.
/// Unreachable nodes get `u32::MAX`.
pub fn bfs_distances<T: Topology + ?Sized>(topo: &T, src: NodeId) -> Vec<u32> {
    let n = topo.num_nodes();
    assert!(src < n, "source {src} out of range for {}", topo.name());
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::with_capacity(n);
    let mut nbrs = Vec::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        topo.neighbors_into(u, &mut nbrs);
        for &v in &nbrs {
            if dist[v] == u32::MAX {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `src`: the maximum BFS distance to any node.
/// Panics if the graph is disconnected.
pub fn eccentricity<T: Topology + ?Sized>(topo: &T, src: NodeId) -> u32 {
    let dist = bfs_distances(topo, src);
    let max = *dist.iter().max().expect("non-empty graph");
    assert_ne!(max, u32::MAX, "{} is disconnected", topo.name());
    max
}

/// Exact diameter by running BFS from every node. O(N·E) — fine for the
/// network sizes the experiments exercise (≤ 2^15 nodes).
pub fn diameter<T: Topology + ?Sized>(topo: &T) -> u32 {
    (0..topo.num_nodes())
        .map(|u| eccentricity(topo, u))
        .max()
        .expect("non-empty graph")
}

/// Diameter of a *vertex-transitive* graph: a single BFS suffices because
/// every node has the same eccentricity. The hypercube and dual-cube are
/// vertex-transitive (the dual-cube's node symmetry is established in the
/// authors' earlier work); the test suite verifies agreement with
/// [`diameter`] for small instances before the experiments rely on this.
pub fn diameter_vertex_transitive<T: Topology + ?Sized>(topo: &T) -> u32 {
    eccentricity(topo, 0)
}

/// Whether all nodes are reachable from node 0.
pub fn is_connected<T: Topology + ?Sized>(topo: &T) -> bool {
    topo.num_nodes() == 0 || bfs_distances(topo, 0).iter().all(|&d| d != u32::MAX)
}

/// Structural problems found by [`check_simple_undirected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphDefect {
    /// A node listed itself as a neighbour.
    SelfLoop(NodeId),
    /// A node listed the same neighbour twice.
    DuplicateEdge(NodeId, NodeId),
    /// `v ∈ neighbors(u)` but `u ∉ neighbors(v)`.
    Asymmetric(NodeId, NodeId),
    /// A neighbour id out of `0..num_nodes()`.
    OutOfRange(NodeId, NodeId),
}

/// Verifies the simple-undirected-graph contract of [`Topology`]:
/// no self loops, no duplicate neighbours, symmetric adjacency, ids in
/// range. Returns every defect found (empty = sound).
pub fn check_simple_undirected<T: Topology + ?Sized>(topo: &T) -> Vec<GraphDefect> {
    let n = topo.num_nodes();
    let mut defects = Vec::new();
    let mut nbrs = Vec::new();
    for u in 0..n {
        topo.neighbors_into(u, &mut nbrs);
        let mut seen = nbrs.clone();
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0] == w[1] {
                defects.push(GraphDefect::DuplicateEdge(u, w[0]));
            }
        }
        for &v in &nbrs {
            if v >= n {
                defects.push(GraphDefect::OutOfRange(u, v));
                continue;
            }
            if v == u {
                defects.push(GraphDefect::SelfLoop(u));
            }
            if !topo.is_edge(v, u) {
                defects.push(GraphDefect::Asymmetric(u, v));
            }
        }
    }
    defects
}

/// A shortest path `[src, …, dst]` by BFS — the generic router for
/// topologies without a closed-form routing function (e.g. CCC in the
/// traffic experiments). Panics if `dst` is unreachable.
pub fn shortest_path<T: Topology + ?Sized>(topo: &T, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let n = topo.num_nodes();
    assert!(src < n && dst < n);
    if src == dst {
        return vec![src];
    }
    let mut parent = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    let mut nbrs = Vec::new();
    parent[src] = src;
    queue.push_back(src);
    'outer: while let Some(u) = queue.pop_front() {
        topo.neighbors_into(u, &mut nbrs);
        for &v in &nbrs {
            if parent[v] == usize::MAX {
                parent[v] = u;
                if v == dst {
                    break 'outer;
                }
                queue.push_back(v);
            }
        }
    }
    assert_ne!(parent[dst], usize::MAX, "{dst} unreachable from {src}");
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    path
}

/// Renders the topology in Graphviz DOT format, with an optional
/// per-node attribute callback (e.g. colouring the dual-cube's classes).
/// Small instances only — the point is `dot -Tsvg` diagrams of the
/// Figure 1/2 networks.
pub fn to_dot<T: Topology + ?Sized>(topo: &T, node_attrs: impl Fn(NodeId) -> String) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "graph \"{}\" {{", topo.name()).unwrap();
    writeln!(out, "  layout=neato; node [shape=circle];").unwrap();
    for u in 0..topo.num_nodes() {
        let attrs = node_attrs(u);
        if attrs.is_empty() {
            writeln!(out, "  n{u};").unwrap();
        } else {
            writeln!(out, "  n{u} [{attrs}];").unwrap();
        }
    }
    let mut nbrs = Vec::new();
    for u in 0..topo.num_nodes() {
        topo.neighbors_into(u, &mut nbrs);
        for &v in nbrs.iter().filter(|&&v| v > u) {
            writeln!(out, "  n{u} -- n{v};").unwrap();
        }
    }
    out.push_str("}\n");
    out
}

/// Histogram of node degrees: `(degree, count)` sorted by degree.
/// Regular networks (hypercube, dual-cube) produce a single entry.
pub fn degree_histogram<T: Topology + ?Sized>(topo: &T) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for u in 0..topo.num_nodes() {
        *counts.entry(topo.degree(u)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Average inter-node distance (over ordered pairs, excluding `u == v`),
/// computed exactly by all-pairs BFS. Used in the properties table (E2).
pub fn average_distance<T: Topology + ?Sized>(topo: &T) -> f64 {
    let n = topo.num_nodes();
    assert!(n > 1);
    let mut total: u64 = 0;
    for u in 0..n {
        for d in bfs_distances(topo, u) {
            assert_ne!(d, u32::MAX, "{} is disconnected", topo.name());
            total += d as u64;
        }
    }
    total as f64 / (n as f64 * (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;

    /// A deliberately broken topology for failure-injection tests:
    /// node 0 lists node 1, but node 1 lists nobody; node 2 loops on itself.
    struct Broken;
    impl Topology for Broken {
        fn num_nodes(&self) -> usize {
            3
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            out.clear();
            match u {
                0 => out.push(1),
                1 => {}
                2 => {
                    out.push(2);
                    out.push(2);
                }
                _ => unreachable!(),
            }
        }
        fn name(&self) -> String {
            "broken".into()
        }
    }

    #[test]
    fn bfs_on_hypercube_matches_hamming() {
        let q = Hypercube::new(4);
        for src in [0usize, 5, 15] {
            let dist = bfs_distances(&q, src);
            for (v, &d) in dist.iter().enumerate() {
                assert_eq!(d, (src ^ v).count_ones(), "src={src} v={v}");
            }
        }
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        for m in 1..=6 {
            let q = Hypercube::new(m);
            assert_eq!(diameter(&q), m);
            assert_eq!(diameter_vertex_transitive(&q), m);
        }
    }

    #[test]
    fn hypercube_is_connected_and_sound() {
        let q = Hypercube::new(5);
        assert!(is_connected(&q));
        assert!(check_simple_undirected(&q).is_empty());
        assert_eq!(degree_histogram(&q), vec![(5, 32)]);
    }

    #[test]
    fn defects_are_detected() {
        let defects = check_simple_undirected(&Broken);
        assert!(defects.contains(&GraphDefect::Asymmetric(0, 1)));
        assert!(defects.contains(&GraphDefect::SelfLoop(2)));
        assert!(defects.contains(&GraphDefect::DuplicateEdge(2, 2)));
    }

    #[test]
    fn dot_export_lists_every_node_and_edge() {
        let q = Hypercube::new(2);
        let dot = to_dot(&q, |u| {
            if u == 0 {
                "color=red".into()
            } else {
                String::new()
            }
        });
        assert!(dot.starts_with("graph \"Q_2\""));
        assert!(dot.contains("n0 [color=red];"));
        assert_eq!(dot.matches(" -- ").count(), q.num_edges());
        assert!(dot.contains("n0 -- n1;"));
        assert!(!dot.contains("n1 -- n0;"), "each edge once");
    }

    #[test]
    fn average_distance_of_q1_is_one() {
        assert!((average_distance(&Hypercube::new(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_distance_of_q2() {
        // C_4: distances from each node: 0,1,1,2 → mean over 3 others = 4/3.
        assert!((average_distance(&Hypercube::new(2)) - 4.0 / 3.0).abs() < 1e-12);
    }
}
