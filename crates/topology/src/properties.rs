//! Closed-form topological properties and the comparison tables behind the
//! paper's Section 1 motivation (experiment E2).
//!
//! The headline claim: with at most 8 links per processor a hypercube tops
//! out at `2^8 = 256` nodes, while the dual-cube `D_8` reaches
//! `2^15 = 32768` — "parallel computers with tens of thousands of
//! processors can be constructed by dual-cube practically with up to eight
//! connections each processor" — paying only `+1` diameter over the
//! equal-sized hypercube.

use crate::ccc::CubeConnectedCycles;
use crate::dualcube::DualCube;
use crate::hypercube::Hypercube;
use crate::traits::Topology;

/// One row of a topology-comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoRow {
    /// Network name, e.g. `"D_3"`.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected links.
    pub edges: usize,
    /// Node degree (all three networks here are regular).
    pub degree: usize,
    /// Diameter (closed form; BFS-verified in the tests).
    pub diameter: u32,
}

impl TopoRow {
    /// Degree × diameter, the classic cost measure for interconnection
    /// networks (smaller is better at equal size).
    pub fn cost(&self) -> u32 {
        self.degree as u32 * self.diameter
    }
}

/// Row for the hypercube `Q_m`.
pub fn hypercube_row(m: u32) -> TopoRow {
    let q = Hypercube::new(m);
    TopoRow {
        name: q.name(),
        nodes: q.num_nodes(),
        edges: q.num_edges(),
        degree: m as usize,
        diameter: m,
    }
}

/// Row for the dual-cube `D_n`.
pub fn dual_cube_row(n: u32) -> TopoRow {
    let d = DualCube::new(n);
    TopoRow {
        name: d.name(),
        nodes: d.num_nodes(),
        edges: d.num_edges(),
        degree: n as usize,
        diameter: d.diameter_formula(),
    }
}

/// Row for the cube-connected cycles `CCC(d)`.
pub fn ccc_row(d: u32) -> TopoRow {
    let c = CubeConnectedCycles::new(d);
    TopoRow {
        name: c.name(),
        nodes: c.num_nodes(),
        edges: c.num_edges(),
        degree: 3,
        diameter: c.diameter_formula(),
    }
}

/// The number of edges crossing each single-address-bit bisection
/// (`nodes with bit b = 0` vs `= 1`), and the minimum over bits — an upper
/// bound on the network's bisection width. For `Q_m` every bit cuts
/// `2^(m−1)` edges; for `D_n` the class bit cuts all `N/2` cross-edges but
/// a node-id bit cuts only the `N/4` matching cluster edges of one class,
/// so the dual-cube's cheapest bisection has **half the hypercube's
/// bandwidth** — the flip side of halving the links per node.
pub fn single_bit_cuts<T: Topology + ?Sized>(topo: &T, bits: u32) -> Vec<usize> {
    let mut cuts = vec![0usize; bits as usize];
    let mut nbrs = Vec::new();
    for u in 0..topo.num_nodes() {
        topo.neighbors_into(u, &mut nbrs);
        for &v in nbrs.iter().filter(|&&v| v > u) {
            for (b, cut) in cuts.iter_mut().enumerate() {
                if (u ^ v) >> b & 1 == 1 {
                    *cut += 1;
                }
            }
        }
    }
    cuts
}

/// The cheapest single-bit bisection: `(bit, edges cut)`.
pub fn best_single_bit_cut<T: Topology + ?Sized>(topo: &T, bits: u32) -> (u32, usize) {
    single_bit_cuts(topo, bits)
        .into_iter()
        .enumerate()
        .min_by_key(|&(_, c)| c)
        .map(|(b, c)| (b as u32, c))
        .expect("at least one bit")
}

/// The Section-1 motivation table: for each link budget `n`, the dual-cube
/// `D_n` next to the hypercube with the *same degree* (`Q_n`, exponentially
/// smaller) and the hypercube with the *same size* (`Q_{2n−1}`, nearly
/// double the links).
pub fn motivation_table(
    n_range: std::ops::RangeInclusive<u32>,
) -> Vec<(TopoRow, TopoRow, TopoRow)> {
    n_range
        .map(|n| {
            (
                dual_cube_row(n),
                hypercube_row(n),         // same degree
                hypercube_row(2 * n - 1), // same size
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    #[test]
    fn rows_match_bfs_for_small_instances() {
        for n in 2..=4 {
            let row = dual_cube_row(n);
            let d = DualCube::new(n);
            assert_eq!(row.nodes, d.num_nodes());
            assert_eq!(row.diameter, graph::diameter_vertex_transitive(&d));
        }
        for m in 2..=6 {
            let row = hypercube_row(m);
            assert_eq!(
                row.diameter,
                graph::diameter_vertex_transitive(&Hypercube::new(m))
            );
        }
        for d in 3..=5 {
            let row = ccc_row(d);
            assert_eq!(row.diameter, graph::diameter(&CubeConnectedCycles::new(d)));
        }
    }

    #[test]
    fn headline_claim_eight_links() {
        // "tens of thousands of processors ... with up to eight connections"
        let d8 = dual_cube_row(8);
        let q8 = hypercube_row(8);
        assert_eq!(d8.degree, 8);
        assert_eq!(d8.nodes, 32768);
        assert_eq!(q8.nodes, 256);
        // Same size as Q_15 with about half the links per node:
        let q15 = hypercube_row(15);
        assert_eq!(q15.nodes, d8.nodes);
        assert_eq!(q15.degree, 15);
        // ... and diameter only one more.
        assert_eq!(d8.diameter, q15.diameter + 1);
    }

    #[test]
    fn dual_cube_halves_edge_count_of_same_size_hypercube_asymptotically() {
        for n in 2..=8 {
            let d = dual_cube_row(n);
            let q = hypercube_row(2 * n - 1);
            assert_eq!(d.nodes, q.nodes);
            // n·2^(2n−2) vs (2n−1)·2^(2n−2): ratio n/(2n−1) → 1/2.
            assert_eq!(d.edges * (2 * n as usize - 1), q.edges * n as usize);
        }
    }

    #[test]
    fn motivation_table_shape() {
        let t = motivation_table(2..=5);
        assert_eq!(t.len(), 4);
        for (d, q_same_degree, q_same_size) in t {
            assert_eq!(d.degree, q_same_degree.degree);
            assert_eq!(d.nodes, q_same_size.nodes);
            assert!(d.nodes >= q_same_degree.nodes);
        }
    }

    #[test]
    fn single_bit_cuts_match_structure() {
        // Q_4: every bit cuts 2^3 = 8 edges.
        let q = Hypercube::new(4);
        assert_eq!(single_bit_cuts(&q, 4), vec![8; 4]);
        // D_3 (N = 32): class bit cuts all 16 cross-edges; each part-I bit
        // cuts the 8 class-0 cluster edges of its dimension; each part-II
        // bit the 8 class-1 ones. Best = N/4 = 8 — half of Q_5's 16.
        let d = DualCube::new(3);
        let cuts = single_bit_cuts(&d, d.address_bits());
        assert_eq!(cuts, vec![8, 8, 8, 8, 16]);
        let (_, best) = best_single_bit_cut(&d, d.address_bits());
        assert_eq!(best, d.num_nodes() / 4);
        let (_, qbest) = best_single_bit_cut(&Hypercube::new(5), 5);
        assert_eq!(qbest, 16);
        assert_eq!(best * 2, qbest);
    }

    #[test]
    fn cost_measure() {
        let r = dual_cube_row(3);
        assert_eq!(r.cost(), 3 * 6);
    }
}
