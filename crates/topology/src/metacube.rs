//! The metacube `MC(k, m)` — the authors' generalisation of the dual-cube
//! (Li & Peng, *Efficient Communication in Metacube*, I-SPAN 2002), built
//! here because the dual-cube paper positions itself inside this family:
//! **`MC(1, m)` is exactly the dual-cube `D_(m+1)`** (two classes), and
//! `MC(0, m) = Q_m`.
//!
//! An `MC(k, m)` node address has `2^k · m + k` bits:
//!
//! ```text
//!   ┌─────────┬───────────────┬─────┬───────────────┬───────────────┐
//!   │ class c │  field 2^k−1  │  …  │    field 1    │    field 0    │
//!   │ (k bit) │    (m bit)    │     │    (m bit)    │    (m bit)    │
//!   └─────────┴───────────────┴─────┴───────────────┴───────────────┘
//! ```
//!
//! Node `u` lies in a *cluster*: the `m`-cube spanned by flipping the bits
//! of field `c(u)` (its own class's field). Edges:
//!
//! * **cube edges** — flip one bit of field `c(u)` (degree `m`);
//! * **cross edges** — flip one bit of the class field itself (degree `k`).
//!
//! Total degree `m + k`; `2^(2^k·m + k)` nodes. For `k = 1` this is the
//! dual-cube presentation with the class bit *at the bottom* — isomorphic
//! to [`crate::DualCube`] by rotating the address, which the tests verify
//! explicitly.

use crate::bits::{field, flip};
use crate::traits::{NodeId, Topology};

/// The metacube `MC(k, m)`: degree `m + k`, `2^(2^k·m + k)` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metacube {
    k: u32,
    m: u32,
}

impl Metacube {
    /// Creates `MC(k, m)`. Requires `m ≥ 1`, `k ≤ 2`, and a total address
    /// width of at most 26 bits (`k = 2, m = 5` is already 22 bits /
    /// 4M nodes; larger instances exceed exhaustive-simulation budgets).
    pub fn new(k: u32, m: u32) -> Self {
        assert!(m >= 1, "metacube needs m >= 1");
        assert!(
            k <= 2,
            "metacube class field wider than 2 is impractical here"
        );
        let bits = (1u32 << k) * m + k;
        assert!(
            bits <= 26,
            "MC({k},{m}) would need {bits} address bits (max 26)"
        );
        Metacube { k, m }
    }

    /// The class-field width `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The cube-field width `m`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Total address bits, `2^k·m + k`.
    #[inline]
    pub fn address_bits(&self) -> u32 {
        (1u32 << self.k) * self.m + self.k
    }

    /// The class of node `u`: the low `k` bits (0 when `k = 0`).
    #[inline]
    pub fn class_of(&self, u: NodeId) -> usize {
        if self.k == 0 {
            0
        } else {
            field(u, 0, self.k)
        }
    }

    /// The `m`-bit field `i` of `u` (`0 ≤ i < 2^k`).
    #[inline]
    pub fn cube_field(&self, u: NodeId, i: u32) -> usize {
        debug_assert!(i < (1 << self.k));
        field(u, self.k + i * self.m, self.m)
    }

    /// The neighbour across cube dimension `j` (`0 ≤ j < m`): flips bit
    /// `j` of the node's own class field.
    #[inline]
    pub fn cube_neighbor(&self, u: NodeId, j: u32) -> NodeId {
        debug_assert!(j < self.m);
        let c = self.class_of(u) as u32;
        flip(u, self.k + c * self.m + j)
    }

    /// The neighbour across cross dimension `i` (`0 ≤ i < k`): flips bit
    /// `i` of the class field.
    #[inline]
    pub fn cross_neighbor(&self, u: NodeId, i: u32) -> NodeId {
        debug_assert!(i < self.k);
        flip(u, i)
    }

    /// Dual-cube view: for `k = 1`, maps an `MC(1, m)` node id to the
    /// [`crate::DualCube`] id of `D_(m+1)` (class bit moves from the
    /// bottom to the top).
    pub fn to_dual_cube_id(&self, u: NodeId) -> NodeId {
        assert_eq!(self.k, 1, "dual-cube view requires k = 1");
        let class = u & 1;
        (u >> 1) | (class << (2 * self.m))
    }
}

impl Topology for Metacube {
    fn num_nodes(&self) -> usize {
        1usize << self.address_bits()
    }

    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        debug_assert!(u < self.num_nodes());
        out.clear();
        for j in 0..self.m {
            out.push(self.cube_neighbor(u, j));
        }
        for i in 0..self.k {
            out.push(self.cross_neighbor(u, i));
        }
    }

    fn degree(&self, _u: NodeId) -> usize {
        (self.m + self.k) as usize
    }

    fn is_edge(&self, u: NodeId, v: NodeId) -> bool {
        if (u ^ v).count_ones() != 1 {
            return false;
        }
        let i = (u ^ v).trailing_zeros();
        if i < self.k {
            return true; // cross edge
        }
        // Cube edge: the flipped bit must lie in *both* endpoints' own
        // class field — and since the class bits agree, one check does.
        let c = self.class_of(u) as u32;
        (self.k + c * self.m..self.k + (c + 1) * self.m).contains(&i)
    }

    fn num_edges(&self) -> usize {
        self.degree(0) * self.num_nodes() / 2
    }

    fn is_cross_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Cross dimensions flip a class-field bit (index < k); cube
        // dimensions never touch the class field.
        let d = u ^ v;
        d.count_ones() == 1 && d.trailing_zeros() < self.k
    }

    fn max_ports(&self) -> u32 {
        self.m + self.k
    }

    /// [`Topology::neighbors_into`] order: cube dimension `j` is port `j`
    /// (the flipped raw bit sits at `k + class·m + j`), cross dimension
    /// `i` is port `m + i`.
    fn port_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if !self.is_edge(u, v) {
            return None;
        }
        let i = (u ^ v).trailing_zeros();
        Some(if i < self.k {
            self.m + i
        } else {
            i - self.k - self.class_of(u) as u32 * self.m
        })
    }

    fn name(&self) -> String {
        format!("MC({},{})", self.k, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualcube::DualCube;
    use crate::graph;

    #[test]
    fn mc0_is_a_hypercube() {
        let mc = Metacube::new(0, 4);
        let q = crate::hypercube::Hypercube::new(4);
        assert_eq!(mc.num_nodes(), q.num_nodes());
        for u in 0..mc.num_nodes() {
            for v in 0..mc.num_nodes() {
                assert_eq!(mc.is_edge(u, v), q.is_edge(u, v), "{u}-{v}");
            }
        }
    }

    #[test]
    fn mc1_is_the_dual_cube() {
        // MC(1, m) ≅ D_(m+1) under the explicit address rotation.
        for m in 1..=3u32 {
            let mc = Metacube::new(1, m);
            let d = DualCube::new(m + 1);
            assert_eq!(mc.num_nodes(), d.num_nodes(), "m={m}");
            assert_eq!(mc.degree(0), d.degree(0));
            for u in 0..mc.num_nodes() {
                for v in 0..mc.num_nodes() {
                    assert_eq!(
                        mc.is_edge(u, v),
                        d.is_edge(mc.to_dual_cube_id(u), mc.to_dual_cube_id(v)),
                        "m={m}: {u}-{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn counts_and_regularity() {
        for (k, m) in [(0u32, 3u32), (1, 2), (2, 2), (2, 3)] {
            let mc = Metacube::new(k, m);
            assert_eq!(mc.num_nodes(), 1 << ((1 << k) * m + k));
            assert_eq!(
                graph::degree_histogram(&mc),
                vec![((m + k) as usize, mc.num_nodes())],
                "MC({k},{m})"
            );
            assert_eq!(mc.num_edges(), (m + k) as usize * mc.num_nodes() / 2);
        }
    }

    #[test]
    fn graph_contract_and_connectivity() {
        for (k, m) in [(1u32, 2u32), (2, 1), (2, 2)] {
            let mc = Metacube::new(k, m);
            assert!(
                graph::check_simple_undirected(&mc).is_empty(),
                "MC({k},{m})"
            );
            assert!(graph::is_connected(&mc), "MC({k},{m})");
        }
    }

    #[test]
    fn mc22_packs_many_nodes_per_link() {
        // The metacube headline: MC(2,3) reaches 2^14 nodes at degree 5.
        let mc = Metacube::new(2, 3);
        assert_eq!(mc.num_nodes(), 1 << 14);
        assert_eq!(mc.degree(0), 5);
        // Compare: a degree-5 hypercube has 32 nodes.
        assert_eq!(mc.num_nodes() / 32, 512);
    }

    #[test]
    fn cube_neighbors_stay_in_class() {
        let mc = Metacube::new(2, 2);
        for u in (0..mc.num_nodes()).step_by(17) {
            for j in 0..2 {
                let v = mc.cube_neighbor(u, j);
                assert_eq!(mc.class_of(u), mc.class_of(v));
                assert!(mc.is_edge(u, v));
            }
            for i in 0..2 {
                let v = mc.cross_neighbor(u, i);
                assert_ne!(mc.class_of(u), mc.class_of(v));
                assert!(mc.is_edge(u, v));
            }
        }
    }

    #[test]
    fn no_edge_between_same_field_flips_of_foreign_class() {
        // Flipping a bit of a field that is not the node's own class field
        // must not be an edge (the metacube analogue of "no edges between
        // clusters of the same class").
        let mc = Metacube::new(1, 2);
        // u of class 0: its own field is field 0 (bits 1..=2); field 1 is
        // bits 3..=4. Flipping bit 3 is not an edge.
        let u = 0b00000usize;
        assert_eq!(mc.class_of(u), 0);
        assert!(!mc.is_edge(u, u ^ 0b01000));
        assert!(mc.is_edge(u, u ^ 0b00010));
    }

    #[test]
    fn diameter_small_cases() {
        // MC(1,1) = D_2: diameter 4. MC(1,2) = D_3: diameter 6.
        assert_eq!(graph::diameter(&Metacube::new(1, 1)), 4);
        assert_eq!(graph::diameter(&Metacube::new(1, 2)), 6);
    }

    #[test]
    #[should_panic(expected = "address bits")]
    fn oversized_rejected() {
        Metacube::new(2, 7);
    }
}
