//! Domain example — running totals over a telemetry stream.
//!
//! The motivating workload for parallel prefix (Hillis & Steele, the
//! paper's reference [3]): a fleet of `2^(2n−1)` collectors each buffers a
//! burst of telemetry samples; the fleet must compute, for *every sample
//! position in the global stream*, the cumulative byte count and the
//! running maximum latency so far — i.e. an inclusive prefix over an
//! input far larger than the machine. This exercises the future-work-1
//! generalisation (`d_prefix_large`): block-local scans, one network
//! prefix over block totals at Theorem-1 cost, block-local offsets.
//!
//! ```text
//! cargo run --example telemetry_scan
//! ```

use dc_core::ops::{Max, Sum};
use dc_core::prefix::large::d_prefix_large;
use dc_core::prefix::{sequential_prefix, PrefixKind};
use dc_core::theory;
use dc_topology::{DualCube, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One telemetry sample: payload size and observed latency.
#[derive(Debug, Clone, Copy)]
struct Sample {
    bytes: i64,
    latency_us: i64,
}

fn main() {
    let n = 4; // D_4: 128 collectors, degree 4
    let d = DualCube::new(n);
    let samples_per_node = 256;
    let total = d.num_nodes() * samples_per_node;

    let mut rng = StdRng::seed_from_u64(0xDC_2008);
    let stream: Vec<Sample> = (0..total)
        .map(|_| Sample {
            bytes: rng.gen_range(64..=1500),
            latency_us: rng.gen_range(50..=20_000),
        })
        .collect();

    println!(
        "=== telemetry scan on {} ({} collectors × {} samples = {} samples) ===",
        d.name(),
        d.num_nodes(),
        samples_per_node,
        total
    );

    // Cumulative byte counts: prefix under addition.
    let bytes: Vec<Sum> = stream.iter().map(|s| Sum(s.bytes)).collect();
    let cumulative = d_prefix_large(&d, &bytes, PrefixKind::Inclusive);

    // Running maximum latency: prefix under max — same machinery, second
    // associative operation.
    let lat: Vec<Max> = stream.iter().map(|s| Max(s.latency_us)).collect();
    let running_max = d_prefix_large(&d, &lat, PrefixKind::Inclusive);

    // Spot-check against the sequential references.
    assert_eq!(
        cumulative.prefixes,
        sequential_prefix(&bytes, PrefixKind::Inclusive)
    );
    assert_eq!(
        running_max.prefixes,
        sequential_prefix(&lat, PrefixKind::Inclusive)
    );

    let grand_total = cumulative.prefixes.last().unwrap().0;
    let peak = running_max.prefixes.last().unwrap().0;
    println!("grand total transferred : {grand_total} bytes");
    println!("peak latency            : {peak} µs");
    for probe in [total / 7, total / 2, total - 1] {
        println!(
            "  after sample {probe:>5}: {:>9} bytes cumulative, running max {:>6} µs",
            cumulative.prefixes[probe].0, running_max.prefixes[probe].0
        );
    }

    println!(
        "\nnetwork cost: {} comm steps (Theorem 1 for one value per node: {}) — \
         unchanged by the {}× larger input; local work grows instead \
         ({} comp steps, {} element ops)",
        cumulative.metrics.comm_steps,
        theory::prefix_comm(n),
        samples_per_node,
        cumulative.metrics.comp_steps,
        cumulative.metrics.element_ops,
    );

    // A sanity identity: the running max at the end equals the max of the
    // fold computed directly.
    let direct_peak = stream.iter().map(|s| s.latency_us).max().unwrap();
    assert_eq!(peak, direct_peak);
    let direct_total: i64 = stream.iter().map(|s| s.bytes).sum();
    assert_eq!(grand_total, direct_total);
    println!("checked against sequential scan over all {total} samples. ✔");
}
