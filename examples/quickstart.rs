//! Quickstart: build a dual-cube, run the paper's two algorithms, and
//! compare the measured step counts with the theorems.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dc_core::ops::Sum;
use dc_core::prefix::dualcube::{d_prefix, Step5Mode};
use dc_core::prefix::PrefixKind;
use dc_core::run::Recording;
use dc_core::sort::dualcube::d_sort;
use dc_core::sort::SortOrder;
use dc_core::theory;
use dc_topology::{graph, DualCube, RecDualCube, Topology};

fn main() {
    let n = 3;
    let d = DualCube::new(n);
    println!("=== {} ===", d.name());
    println!(
        "{} nodes, {} links, degree {}, diameter {} (BFS-verified: {})",
        d.num_nodes(),
        d.num_edges(),
        d.degree(0),
        d.diameter_formula(),
        graph::diameter_vertex_transitive(&d),
    );

    // --- Parallel prefix (Algorithm 2, Theorem 1) ------------------------
    let input: Vec<Sum> = (1..=d.num_nodes() as i64).map(Sum).collect();
    let run = d_prefix(
        &d,
        &input,
        PrefixKind::Inclusive,
        Step5Mode::PaperFaithful,
        Recording::Off,
    );
    println!("\nD_prefix over c[i] = i+1:");
    println!(
        "  s[0..8]  = {:?}…",
        run.prefixes[..8].iter().map(|s| s.0).collect::<Vec<_>>()
    );
    println!(
        "  s[{}] = {} (= Σ 1..={})",
        d.num_nodes() - 1,
        run.prefixes.last().unwrap().0,
        d.num_nodes()
    );
    println!(
        "  measured: {} comm, {} comp   |   Theorem 1: {} comm, {} comp",
        run.metrics.comm_steps,
        run.metrics.comp_steps,
        theory::prefix_comm(n),
        theory::prefix_comp(n)
    );
    assert_eq!(run.metrics.comm_steps, theory::prefix_comm(n));
    assert_eq!(run.metrics.comp_steps, theory::prefix_comp(n));

    // --- Sorting (Algorithm 3, Theorem 2) --------------------------------
    let rec = RecDualCube::new(n);
    let keys: Vec<u32> = (0..rec.num_nodes() as u32)
        .map(|i| (i * 17 + 5) % 64)
        .collect();
    let run = d_sort(&rec, &keys, SortOrder::Ascending, Recording::Off);
    println!("\nD_sort over pseudo-random keys:");
    println!("  input [0..8]  = {:?}…", &keys[..8]);
    println!("  output[0..8]  = {:?}…", &run.output[..8]);
    assert!(SortOrder::Ascending.is_sorted(&run.output));
    println!(
        "  measured: {} comm, {} comp   |   Theorem 2 bounds: ≤{} comm, ≤{} comp (exact: {}, {})",
        run.metrics.comm_steps,
        run.metrics.comp_steps,
        theory::sort_comm_bound(n),
        theory::sort_comp_bound(n),
        theory::sort_comm_exact(n),
        theory::sort_comp_exact(n)
    );
    assert_eq!(run.metrics.comm_steps, theory::sort_comm_exact(n));
    assert_eq!(run.metrics.comp_steps, theory::sort_comp_exact(n));

    println!("\nBoth theorems reproduced. ✔");
}
