//! Domain example — probing a degraded machine.
//!
//! Operations story: a `D_4` cluster (128 processors, 4 links each) loses
//! nodes to failures. How much head-room does the topology give before
//! jobs must migrate? The dual-cube's connectivity κ = n guarantees any
//! n−1 failures are survivable; this probe injects escalating random
//! fault sets, checks connectivity, finds surviving disjoint paths, and
//! measures how far routes stretch.
//!
//! ```text
//! cargo run --example fault_probe            # default: seed 7
//! cargo run --example fault_probe -- 1234    # another fault scenario
//! ```

use dc_topology::connectivity::max_node_disjoint_paths;
use dc_topology::faulty::Faulty;
use dc_topology::{graph, DualCube, Routed, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map_or(7, |s| s.parse().expect("seed"));
    let n = 4;
    let d = DualCube::new(n);
    println!(
        "=== fault probe on {} ({} nodes, degree {}, κ = {n}) — seed {seed} ===\n",
        d.name(),
        d.num_nodes(),
        d.degree(0)
    );

    // The guarantee: n disjoint paths between any two nodes.
    let (u, v) = (3usize, d.num_nodes() - 7);
    let paths = max_node_disjoint_paths(&d, u, v);
    println!(
        "node-disjoint paths {u} → {v}: {} (Menger guarantees tolerance of {} targeted faults)",
        paths.len(),
        paths.len() - 1
    );
    for (i, p) in paths.iter().enumerate() {
        println!(
            "  path {}: {} hops via {:?}",
            i + 1,
            p.len() - 1,
            &p[1..p.len() - 1]
        );
    }

    // Escalating random failures.
    println!("\nescalating random failures:");
    println!(
        "{:>8} {:>12} {:>16} {:>18}",
        "faults", "connected?", "probe route", "dilation"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<usize> = (0..d.num_nodes()).filter(|&x| x != u && x != v).collect();
    ids.shuffle(&mut rng);
    for faults in [1usize, 3, 8, 16, 32, 64] {
        let fnet = Faulty::new(d, &ids[..faults]);
        let connected = fnet.survivors_connected();
        if !connected {
            println!("{faults:>8} {:>12} {:>16} {:>18}", "NO", "—", "—");
            continue;
        }
        let route = graph::shortest_path(&fnet, u, v);
        let fault_free = d.distance(u, v) as usize;
        println!(
            "{faults:>8} {:>12} {:>13} hops {:>17.2}×",
            "yes",
            route.len() - 1,
            (route.len() - 1) as f64 / fault_free as f64
        );
    }

    println!(
        "\nfault-free distance {u} → {v}: {} hops; κ−1 = {} failures are always \
         survivable, and random fault sets far beyond that typically leave the \
         network whole with modest dilation.",
        d.distance(u, v),
        n - 1
    );
}
