//! Tour of the metacube family `MC(k, m)` — where the paper's ideas go
//! next. `MC(0, m)` is the hypercube, `MC(1, m)` the dual-cube, and each
//! further class bit squares the cluster count again at +1 degree.
//!
//! The tour builds the ladder Q_4 = MC(0,4) → D_4 = MC(1,3) → MC(2,2)
//! (all degree 4), runs the
//! generalised prefix and sort on each, and shows the price the
//! `(2k+1)`-cycle emulated window pays as `k` grows.
//!
//! ```text
//! cargo run --example metacube_tour
//! ```

use dc_core::ops::Sum;
use dc_core::prefix::metacube::{mc_prefix, mc_prefix_comm};
use dc_core::prefix::{sequential_prefix, PrefixKind};
use dc_core::sort::metacube::{mc_sort, mc_sort_comm};
use dc_core::sort::SortOrder;
use dc_topology::{graph, Metacube, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("=== the metacube ladder at degree 4 ===\n");
    println!(
        "{:<9} {:>7} {:>7} {:>10} {:>13} {:>12}",
        "network", "nodes", "degree", "diameter*", "prefix steps", "sort steps"
    );
    let mut rng = StdRng::seed_from_u64(77);
    for (k, m) in [(0u32, 4u32), (1, 3), (2, 2)] {
        let mc = Metacube::new(k, m);
        let nodes = mc.num_nodes();

        // Run the algorithms for real and verify.
        let input: Vec<Sum> = (0..nodes).map(|_| Sum(rng.gen_range(0..50))).collect();
        let p = mc_prefix(&mc, &input, PrefixKind::Inclusive);
        assert_eq!(p.prefixes, sequential_prefix(&input, PrefixKind::Inclusive));
        assert_eq!(p.metrics.comm_steps, mc_prefix_comm(k, m));

        let keys: Vec<u32> = (0..nodes).map(|_| rng.gen_range(0..9999)).collect();
        let s = mc_sort(&mc, &keys, SortOrder::Ascending);
        assert!(s.output.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.metrics.comm_steps, mc_sort_comm(k, m));

        let diameter = if nodes <= 2048 {
            graph::diameter_vertex_transitive(&mc).to_string()
        } else {
            "-".into()
        };
        println!(
            "{:<9} {:>7} {:>7} {:>10} {:>13} {:>12}",
            mc.name(),
            nodes,
            mc.degree(0),
            diameter,
            p.metrics.comm_steps,
            s.metrics.comm_steps
        );
    }
    println!("\n(*) BFS from node 0, valid by vertex transitivity.");
    println!(
        "\nEach class bit k buys exponentially more nodes per link; the bill is \
         the (2k+1)-cycle window every missing dimension pays — the dual-cube's \
         3-hop compare-exchange (paper, Section 6) is the k = 1 rung of this ladder."
    );

    // Show one window in detail on MC(2,1): 5 cycles for a field dimension.
    let mc = Metacube::new(2, 1);
    let input: Vec<Sum> = (1..=mc.num_nodes() as i64).map(Sum).collect();
    let run = mc_prefix(&mc, &input, PrefixKind::Inclusive);
    println!(
        "\nMC(2,1) in detail: {} nodes, {} comm steps = 2 class dims × 1 cycle + \
         {} field dims × 5 cycles; prefix verified (last = {}).",
        mc.num_nodes(),
        run.metrics.comm_steps,
        1usize << 2,
        run.prefixes.last().unwrap().0
    );
}
