//! Interactive-ish topology explorer: prints the anatomy of a dual-cube —
//! addresses, clusters, routes, and the comparison tables from the
//! paper's introduction.
//!
//! ```text
//! cargo run --example network_explorer            # defaults to n = 3
//! cargo run --example network_explorer -- 4       # D_4
//! cargo run --example network_explorer -- 4 19 87 # also route 19 → 87
//! ```

use dc_topology::bits::to_binary;
use dc_topology::{graph, properties, Class, DualCube, Routed, Topology};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u32 = args
        .first()
        .map_or(3, |s| s.parse().expect("n must be a small integer"));
    let d = DualCube::new(n);
    let bits = d.address_bits();

    println!("=== {} anatomy ===", d.name());
    println!(
        "{} nodes ({}-bit addresses), degree {}, {} links, diameter {}",
        d.num_nodes(),
        bits,
        d.degree(0),
        d.num_edges(),
        d.diameter_formula()
    );
    println!(
        "{} clusters per class, each a {}-dimensional hypercube of {} nodes",
        d.clusters_per_class(),
        d.cluster_dim(),
        d.cluster_size()
    );

    // A few sample addresses, one per class.
    println!("\naddress anatomy (class | cluster | node):");
    for &u in &[0usize, (d.num_nodes() / 2 + 3).min(d.num_nodes() - 1)] {
        let a = d.address(u);
        println!(
            "  node {u:>4} = {}  → {a}   cross-neighbour {}",
            to_binary(u, bits),
            d.cross_neighbor(u)
        );
    }

    // Figure 1/2-style cluster census for small n.
    if n <= 3 {
        println!("\ncluster census (Figures 1/2 of the paper):");
        for class in [Class::Zero, Class::One] {
            for c in 0..d.clusters_per_class() {
                let ci = class.as_usize() * d.clusters_per_class() + c;
                let members = d.cluster_members(ci);
                println!("  class {class} cluster {c}: nodes {:?}", members);
            }
        }
    }

    // Optional route query.
    if let (Some(src), Some(dst)) = (args.get(1), args.get(2)) {
        let (src, dst): (usize, usize) = (src.parse().unwrap(), dst.parse().unwrap());
        let path = d.route(src, dst);
        println!(
            "\nroute {src} → {dst} ({} hops, Hamming {}, formula distance {}):",
            path.len() - 1,
            (src ^ dst).count_ones(),
            d.distance_formula(src, dst)
        );
        for w in path.windows(2) {
            let kind = if d.class_of(w[0]) != d.class_of(w[1]) {
                "cross-edge"
            } else {
                "cluster edge"
            };
            println!(
                "  {} → {}   ({kind})",
                to_binary(w[0], bits),
                to_binary(w[1], bits)
            );
        }
    }

    // The Section 1 motivation table.
    println!("\n=== with ≤ {n} links per processor (Section 1 motivation) ===");
    println!(
        "{:<8} {:>9} {:>7} {:>9} {:>13}",
        "network", "nodes", "degree", "diameter", "degree×diam"
    );
    let rows = [
        properties::dual_cube_row(n),
        properties::hypercube_row(n),
        properties::hypercube_row(2 * n - 1),
    ];
    for r in &rows {
        println!(
            "{:<8} {:>9} {:>7} {:>9} {:>13}",
            r.name,
            r.nodes,
            r.degree,
            r.diameter,
            r.cost()
        );
    }
    if n >= 3 {
        let c = properties::ccc_row(n);
        println!(
            "{:<8} {:>9} {:>7} {:>9} {:>13}   (bounded-degree competitor)",
            c.name,
            c.nodes,
            c.degree,
            c.diameter,
            c.cost()
        );
    }

    // BFS double-check for modest sizes.
    if d.num_nodes() <= 1 << 11 {
        let bfs = graph::diameter_vertex_transitive(&d);
        println!(
            "\nBFS-verified diameter: {bfs} (formula says {})",
            d.diameter_formula()
        );
        assert_eq!(bfs, d.diameter_formula());
    }
}
