//! Domain example — BSP PageRank on a dual-cube machine, composed from
//! this library's collectives: the kind of "application algorithm in
//! dual-cube" the paper's future work 3 calls for.
//!
//! A directed web-graph is partitioned one vertex per processor of `D_n`.
//! Every superstep:
//!
//! 1. **scatter ranks** — each processor addresses `rank/out_degree`
//!    contributions to its successors, delivered by the all-to-all
//!    personalized exchange (Technique-2 sweep, `6n−5` steps);
//! 2. **combine** — each processor folds its incoming contributions into
//!    its new rank (local);
//! 3. **converge?** — the residual is summed machine-wide with the
//!    Technique-1 all-reduce (`2n` steps).
//!
//! The example prints per-superstep cost in the paper's step model and the
//! final top-ranked vertices.
//!
//! ```text
//! cargo run --example pagerank_bsp
//! ```

use dc_core::collectives::allreduce;
use dc_core::collectives::alltoall::all_to_all;
use dc_core::ops::Sum;
use dc_topology::{RecDualCube, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DAMPING: f64 = 0.85;
/// Fixed-point scale so rank mass can ride the integer `Sum` monoid.
const SCALE: f64 = 1e9;

fn main() {
    let n = 3;
    let rec = RecDualCube::new(n);
    let verts = rec.num_nodes(); // one vertex per processor

    // A random sparse digraph with a few "hub" vertices.
    let mut rng = StdRng::seed_from_u64(2008);
    let succs: Vec<Vec<usize>> = (0..verts)
        .map(|v| {
            let out = rng.gen_range(1..=4);
            (0..out)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        rng.gen_range(0..4) // hubs 0..4 attract links
                    } else {
                        (v + rng.gen_range(1..verts)) % verts
                    }
                })
                .collect()
        })
        .collect();

    println!(
        "=== BSP PageRank on {} ({verts} vertices, damping {DAMPING}) ===\n",
        rec.name()
    );

    let mut rank = vec![1.0 / verts as f64; verts];
    let mut total_comm = 0u64;
    for superstep in 1..=30 {
        // 1. Address contributions: matrix[src][dst].
        let mut matrix = vec![vec![0u64; verts]; verts];
        for (v, out) in succs.iter().enumerate() {
            let share = rank[v] * DAMPING / out.len() as f64;
            for &w in out {
                matrix[v][w] += (share * SCALE) as u64;
            }
        }
        let exchange = all_to_all(&rec, &matrix);
        total_comm += exchange.metrics.comm_steps;

        // 2. Combine into new ranks.
        let base = (1.0 - DAMPING) / verts as f64;
        let new_rank: Vec<f64> = exchange
            .received
            .iter()
            .map(|incoming| base + incoming.iter().sum::<u64>() as f64 / SCALE)
            .collect();

        // 3. Global residual via all-reduce.
        let residuals: Vec<Sum> = new_rank
            .iter()
            .zip(&rank)
            .map(|(a, b)| Sum(((a - b).abs() * SCALE) as i64))
            .collect();
        let agg = allreduce(rec.standard(), &residuals);
        total_comm += agg.metrics.comm_steps;
        let residual = agg.values[0].0 as f64 / SCALE;

        rank = new_rank;
        if superstep <= 3 || residual < 1e-6 {
            println!(
                "superstep {superstep:>2}: residual {residual:.2e}, \
                 comm this step = {} (all-to-all) + {} (all-reduce)",
                exchange.metrics.comm_steps, agg.metrics.comm_steps
            );
        }
        if residual < 1e-6 {
            println!("\nconverged after {superstep} supersteps, {total_comm} total comm steps");
            break;
        }
    }

    let mut order: Vec<usize> = (0..verts).collect();
    order.sort_by(|&a, &b| rank[b].partial_cmp(&rank[a]).unwrap());
    println!("\ntop vertices by rank:");
    for &v in order.iter().take(5) {
        println!("  vertex {v:>3}: {:.5}", rank[v]);
    }
    let mass: f64 = rank.iter().sum();
    println!("total rank mass: {mass:.4} (≈1 up to fixed-point truncation)");
    assert!((mass - 1.0).abs() < 0.05);
}
