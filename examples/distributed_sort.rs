//! Domain example — distributed sorting of keyed records.
//!
//! A `D_4` machine (128 processors, 4 links each) holds a shard of
//! records per processor and must produce a globally sorted order — the
//! scenario Section 6 targets. Keys travel through the network; values
//! stay cheap to move because records are sorted *by key* with the payload
//! carried alongside.
//!
//! The example also prints the baseline comparison of experiment E7: the
//! same multiset sorted on the equal-sized hypercube `Q_7`, showing the
//! ≤3× emulation overhead of Section 7 in the measured step counts.
//!
//! ```text
//! cargo run --example distributed_sort
//! ```

use dc_core::run::Recording;
use dc_core::sort::dualcube::d_sort;
use dc_core::sort::hypercube::cube_bitonic_sort;
use dc_core::sort::large::d_sort_large;
use dc_core::sort::SortOrder;
use dc_core::theory;
use dc_topology::{Hypercube, RecDualCube, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A keyed record: sorts by key, carries its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Record {
    key: u32,
    origin_node: u16,
}

fn main() {
    let n = 4;
    let rec = RecDualCube::new(n);
    let nodes = rec.num_nodes();
    let mut rng = StdRng::seed_from_u64(42);

    // --- One record per processor ---------------------------------------
    let records: Vec<Record> = (0..nodes)
        .map(|u| Record {
            key: rng.gen_range(0..10_000),
            origin_node: u as u16,
        })
        .collect();

    println!(
        "=== distributed sort on {} ({nodes} processors) ===",
        rec.name()
    );
    let run = d_sort(&rec, &records, SortOrder::Ascending, Recording::Off);
    assert!(run.output.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "sorted {} records: first {:?}, last {:?}",
        nodes,
        run.output.first().unwrap(),
        run.output.last().unwrap()
    );
    println!(
        "D_sort   : {:>4} comm steps, {:>3} comparisons   (Theorem 2: ≤{} / ≤{})",
        run.metrics.comm_steps,
        run.metrics.comp_steps,
        theory::sort_comm_bound(n),
        theory::sort_comp_bound(n)
    );

    // --- Baseline: the same multiset on the equal-sized hypercube -------
    let q = Hypercube::new(2 * n - 1);
    let base = cube_bitonic_sort(&q, &records, SortOrder::Ascending, Recording::Off);
    assert_eq!(base.output, run.output);
    println!(
        "Q_{} sort : {:>4} comm steps, {:>3} comparisons   (m(m+1)/2 = {})",
        2 * n - 1,
        base.metrics.comm_steps,
        base.metrics.comp_steps,
        theory::cube_sort_steps(2 * n - 1)
    );
    println!(
        "emulation overhead: {:.2}× communication for {:.0}% fewer links per node \
         (Section 7 bound: 3×)",
        run.metrics.comm_steps as f64 / base.metrics.comm_steps as f64,
        100.0 * (1.0 - n as f64 / (2 * n - 1) as f64)
    );

    // --- Many records per processor (future work 1) ---------------------
    let per_node = 64;
    let shards: Vec<Record> = (0..nodes * per_node)
        .map(|i| Record {
            key: rng.gen_range(0..1_000_000),
            origin_node: (i / per_node) as u16,
        })
        .collect();
    let big = d_sort_large(&rec, &shards, SortOrder::Ascending);
    assert!(big.output.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "\nsharded sort of {} records ({per_node}/processor): {} comm steps — \
         same schedule as one-per-node, messages carry whole shards",
        shards.len(),
        big.metrics.comm_steps
    );
    assert_eq!(big.metrics.comm_steps, run.metrics.comm_steps);
    println!("all outputs verified sorted. ✔");
}
